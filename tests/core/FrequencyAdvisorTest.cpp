//===-- tests/core/FrequencyAdvisorTest.cpp -------------------------------===//

#include "core/FrequencyAdvisor.h"

#include "gc/GenMSPlan.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  VirtualMachine Vm;
  GenMSPlan Gc;
  ClassId Box;
  FieldId FHot, FCold;
  MethodId Reader;

  Rig()
      : Vm([] {
          VmConfig C;
          C.HeapBytes = 4 * 1024 * 1024;
          C.ProfileFieldAccess = true;
          return C;
        }()),
        Gc(Vm.objects(), Vm.clock(),
           CollectorConfig{.HeapBytes = 4 * 1024 * 1024}) {
    Vm.setCollector(&Gc);
    Box = Vm.classes().defineClass("Box", {{"hot", true},
                                           {"cold", true}});
    FHot = Vm.classes().fieldId(Box, "hot");
    FCold = Vm.classes().fieldId(Box, "cold");

    // reader(n): b = new Box; b.hot = b; b.cold = b;
    // loop n { read b.hot x3; read b.cold x1 }
    BytecodeBuilder B("reader");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t Bx = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Void);
    B.newObj(Box).astore(Bx);
    B.aload(Bx).aload(Bx).putfield(FHot);
    B.aload(Bx).aload(Bx).putfield(FCold);
    Label Loop = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.aload(Bx).getfield(FHot).popv();
    B.aload(Bx).getfield(FHot).popv();
    B.aload(Bx).getfield(FHot).popv();
    B.aload(Bx).getfield(FCold).popv();
    B.iinc(I, 1).jump(Loop);
    B.bind(Done).ret();
    Reader = Vm.addMethod(B.build());
  }
};

} // namespace

TEST(FrequencyAdvisor, CountsFieldAccessesWhenProfiling) {
  Rig R;
  R.Vm.invoke(R.Reader, {Value::makeInt(100)});
  EXPECT_EQ(R.Vm.fieldAccessCount(R.FHot), 300u);
  EXPECT_EQ(R.Vm.fieldAccessCount(R.FCold), 100u);
}

TEST(FrequencyAdvisor, PicksMostAccessedRefField) {
  Rig R;
  R.Vm.invoke(R.Reader, {Value::makeInt(500)});
  FrequencyAdvisor A(R.Vm, /*MinAccesses=*/100);
  CoallocationHint H = A.coallocationHint(R.Box);
  ASSERT_TRUE(H.valid());
  EXPECT_EQ(H.Field, R.FHot);
  EXPECT_EQ(H.SlotOffset, R.Vm.classes().field(R.FHot).Offset);
}

TEST(FrequencyAdvisor, ThresholdGates) {
  Rig R;
  R.Vm.invoke(R.Reader, {Value::makeInt(10)}); // 30 hot accesses.
  FrequencyAdvisor A(R.Vm, /*MinAccesses=*/100);
  EXPECT_FALSE(A.coallocationHint(R.Box).valid());
}

TEST(FrequencyAdvisor, ProfilingOffMeansNoCounts) {
  VmConfig C;
  C.HeapBytes = 4 * 1024 * 1024; // ProfileFieldAccess defaults to false.
  VirtualMachine Vm(C);
  GenMSPlan Gc(Vm.objects(), Vm.clock(),
               CollectorConfig{.HeapBytes = 4 * 1024 * 1024});
  Vm.setCollector(&Gc);
  ClassId Box = Vm.classes().defineClass("Box", {{"f", true}});
  FieldId F = Vm.classes().fieldId(Box, "f");
  BytecodeBuilder B("m");
  B.returns(RetKind::Void);
  uint32_t L = B.newLocal();
  B.newObj(Box).astore(L);
  B.aload(L).aload(L).putfield(F);
  B.aload(L).getfield(F).popv().ret();
  Vm.invoke(Vm.addMethod(B.build()), {});
  EXPECT_EQ(Vm.fieldAccessCount(F), 0u);
}

TEST(FrequencyAdvisor, ConsumerReportsHotMethodsToAosOnce) {
  Rig R;
  FrequencyAdvisor A(R.Vm);
  EXPECT_STREQ(A.name(), "frequency");
  A.setHotMethodSamples(4);

  AttributedSample S;
  S.Method = R.Reader;
  for (int I = 0; I != 4; ++I)
    A.onSample(S);
  EXPECT_EQ(A.sampleCount(R.Reader), 4u);
  EXPECT_EQ(A.hotMethodsReported(), 0u) << "reports happen at period ends";

  PeriodContext Ctx;
  A.onPeriod(Ctx);
  EXPECT_EQ(A.hotMethodsReported(), 1u);
  EXPECT_EQ(R.Vm.aos().hpmHotReports(), 1u);
  // The AOS is enabled by default, so the report recompiles the method.
  EXPECT_TRUE(R.Vm.method(R.Reader).isOptCompiled());

  // Still hot next period: the method must not be re-reported.
  for (int I = 0; I != 4; ++I)
    A.onSample(S);
  A.onPeriod(Ctx);
  EXPECT_EQ(A.hotMethodsReported(), 1u);
  EXPECT_EQ(R.Vm.aos().hpmHotReports(), 1u);
}

TEST(FrequencyAdvisor, ConsumerIgnoresUnresolvedAndColdMethods) {
  Rig R;
  FrequencyAdvisor A(R.Vm);
  A.setHotMethodSamples(8);

  AttributedSample Unresolved; // Method stays kInvalidId.
  A.onSample(Unresolved);
  AttributedSample Cold;
  Cold.Method = R.Reader;
  for (int I = 0; I != 7; ++I) // One below the threshold.
    A.onSample(Cold);

  PeriodContext Ctx;
  A.onPeriod(Ctx);
  EXPECT_EQ(A.hotMethodsReported(), 0u);
  EXPECT_EQ(R.Vm.aos().hpmHotReports(), 0u);
  EXPECT_FALSE(R.Vm.method(R.Reader).isOptCompiled());
}
