//===-- tests/heap/LargeObjectSpaceTest.cpp -------------------------------===//

#include "heap/AddressSpace.h"
#include "heap/LargeObjectSpace.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(LargeObjectSpace, RoundsToBlocks) {
  BlockPool Pool(kHeapBase, 8 * kBlockBytes);
  LargeObjectSpace Los(Pool);
  Address A = Los.alloc(10);
  EXPECT_NE(A, kNullRef);
  EXPECT_EQ(Los.footprintBytes(), kBlockBytes);
  Address B = Los.alloc(kBlockBytes + 1); // Two blocks.
  EXPECT_NE(B, kNullRef);
  EXPECT_EQ(Los.footprintBytes(), 3 * kBlockBytes);
  EXPECT_EQ(Los.objectCount(), 2u);
}

TEST(LargeObjectSpace, SweepFreesRunsAndBlocks) {
  BlockPool Pool(kHeapBase, 8 * kBlockBytes);
  LargeObjectSpace Los(Pool);
  Address A = Los.alloc(3 * kBlockBytes);
  Address B = Los.alloc(kBlockBytes);
  EXPECT_EQ(Pool.freeBlocks(), 4u);
  Los.sweep([&](Address O) { return O == B; });
  (void)A;
  EXPECT_EQ(Los.objectCount(), 1u);
  EXPECT_EQ(Pool.freeBlocks(), 7u);
  EXPECT_TRUE(Los.isObjectBase(B));
  EXPECT_FALSE(Los.isObjectBase(A));
}

TEST(LargeObjectSpace, ExhaustionReturnsNull) {
  BlockPool Pool(kHeapBase, 2 * kBlockBytes);
  LargeObjectSpace Los(Pool);
  EXPECT_EQ(Los.alloc(3 * kBlockBytes), kNullRef);
  EXPECT_NE(Los.alloc(2 * kBlockBytes), kNullRef);
  EXPECT_EQ(Los.alloc(1), kNullRef);
}

TEST(LargeObjectSpace, ForEachObject) {
  BlockPool Pool(kHeapBase, 8 * kBlockBytes);
  LargeObjectSpace Los(Pool);
  Address A = Los.alloc(100);
  Address B = Los.alloc(100);
  std::vector<Address> Seen;
  Los.forEachObject([&](Address O) { Seen.push_back(O); });
  ASSERT_EQ(Seen.size(), 2u);
  EXPECT_EQ(Seen[0], A);
  EXPECT_EQ(Seen[1], B);
}

TEST(LargeObjectSpace, BytesRequestedTracked) {
  BlockPool Pool(kHeapBase, 8 * kBlockBytes);
  LargeObjectSpace Los(Pool);
  Los.alloc(5000);
  Los.alloc(70000);
  EXPECT_EQ(Los.bytesRequested(), 75000u);
}
