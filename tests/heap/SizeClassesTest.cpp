//===-- tests/heap/SizeClassesTest.cpp ------------------------------------===//

#include "heap/SizeClasses.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(SizeClasses, ExactlyFortyClassesUpTo4K) {
  EXPECT_EQ(kNumSizeClasses, 40u);
  EXPECT_EQ(SizeClasses::cellBytes(0), 16u);
  EXPECT_EQ(SizeClasses::cellBytes(kNumSizeClasses - 1), 4096u);
  EXPECT_EQ(kMaxFreeListBytes, 4096u);
}

TEST(SizeClasses, StrictlyIncreasingAndAligned) {
  for (uint32_t I = 1; I != kNumSizeClasses; ++I)
    EXPECT_GT(SizeClasses::cellBytes(I), SizeClasses::cellBytes(I - 1));
  for (uint32_t I = 0; I != kNumSizeClasses; ++I)
    EXPECT_EQ(SizeClasses::cellBytes(I) % 8, 0u);
}

TEST(SizeClasses, ClassForBoundaries) {
  EXPECT_EQ(SizeClasses::classFor(1), 0u);
  EXPECT_EQ(SizeClasses::classFor(16), 0u);
  EXPECT_EQ(SizeClasses::classFor(17), 1u);
  EXPECT_EQ(SizeClasses::classFor(4096), kNumSizeClasses - 1);
  EXPECT_EQ(SizeClasses::classFor(4097), kInvalidId);
}

// Property sweep: every request size maps to the *tightest* class.
class SizeClassFitTest : public testing::TestWithParam<uint32_t> {};

TEST_P(SizeClassFitTest, TightestFit) {
  uint32_t Bytes = GetParam();
  uint32_t Cls = SizeClasses::classFor(Bytes);
  ASSERT_NE(Cls, kInvalidId);
  EXPECT_GE(SizeClasses::cellBytes(Cls), Bytes);
  if (Cls > 0) {
    EXPECT_LT(SizeClasses::cellBytes(Cls - 1), Bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SizeClassFitTest,
                         testing::Range(8u, 4097u, 37u));

TEST(SizeClasses, Waste) {
  EXPECT_EQ(SizeClasses::wasteFor(16), 0u);
  EXPECT_EQ(SizeClasses::wasteFor(17), 7u);
  // 4 KB ceiling: a 3073-byte request wastes 1023 bytes -- the internal
  // fragmentation co-allocation can aggravate (paper section 5.4).
  EXPECT_EQ(SizeClasses::wasteFor(3073), 1023u);
}
