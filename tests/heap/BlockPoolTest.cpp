//===-- tests/heap/BlockPoolTest.cpp --------------------------------------===//

#include "heap/AddressSpace.h"
#include "heap/BlockPool.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(BlockPool, AllocAndOwnership) {
  BlockPool P(kHeapBase, 8 * kBlockBytes);
  EXPECT_EQ(P.totalBlocks(), 8u);
  Address B = P.allocBlock(SpaceId::Nursery);
  EXPECT_NE(B, kNullRef);
  EXPECT_EQ(P.ownerOf(B), SpaceId::Nursery);
  EXPECT_EQ(P.ownerOf(B + kBlockBytes - 1), SpaceId::Nursery);
  EXPECT_EQ(P.freeBlocks(), 7u);
  EXPECT_EQ(P.blocksOwnedBy(SpaceId::Nursery), 1u);
}

TEST(BlockPool, FreeReturnsBlock) {
  BlockPool P(kHeapBase, 4 * kBlockBytes);
  Address B = P.allocBlock(SpaceId::Mature);
  P.freeBlock(B);
  EXPECT_EQ(P.freeBlocks(), 4u);
  EXPECT_EQ(P.ownerOf(B), SpaceId::Free);
}

TEST(BlockPool, ExhaustionReturnsNull) {
  BlockPool P(kHeapBase, 2 * kBlockBytes);
  EXPECT_NE(P.allocBlock(SpaceId::Los), kNullRef);
  EXPECT_NE(P.allocBlock(SpaceId::Los), kNullRef);
  EXPECT_EQ(P.allocBlock(SpaceId::Los), kNullRef);
}

TEST(BlockPool, RunIsContiguousAndFirstFit) {
  BlockPool P(kHeapBase, 8 * kBlockBytes);
  Address A = P.allocBlock(SpaceId::Mature); // Block 0.
  Address Run = P.allocRun(3, SpaceId::Los); // Blocks 1-3.
  EXPECT_EQ(Run, A + kBlockBytes);
  for (uint32_t I = 0; I != 3; ++I)
    EXPECT_EQ(P.ownerOf(Run + I * kBlockBytes), SpaceId::Los);
}

TEST(BlockPool, RunSkipsFragmentedGaps) {
  BlockPool P(kHeapBase, 8 * kBlockBytes);
  // Claim blocks 0..3, then free 1 and 3: free set is {1, 3, 4..7}.
  Address B[4];
  for (auto &X : B)
    X = P.allocBlock(SpaceId::Mature);
  P.freeBlock(B[1]);
  P.freeBlock(B[3]);
  Address Run = P.allocRun(2, SpaceId::Los);
  // The only 2-contiguous window starts at block 3 (3,4)... block 3 is
  // free and block 4 is free: first fit finds 3.
  EXPECT_EQ(Run, kHeapBase + 3 * kBlockBytes);
}

TEST(BlockPool, RunExhaustion) {
  BlockPool P(kHeapBase, 4 * kBlockBytes);
  // Fragment: blocks 0 and 2 taken.
  Address B0 = P.allocBlock(SpaceId::Mature);
  (void)P.allocBlock(SpaceId::Mature);
  Address B2 = P.allocBlock(SpaceId::Mature);
  P.freeBlock(B0);
  (void)B2;
  // Free set {0, 3}: no contiguous pair.
  EXPECT_EQ(P.allocRun(2, SpaceId::Los), kNullRef);
  EXPECT_EQ(P.freeBlocks(), 2u);
}

TEST(BlockPool, FreeRun) {
  BlockPool P(kHeapBase, 8 * kBlockBytes);
  Address Run = P.allocRun(4, SpaceId::Los);
  P.freeRun(Run, 4);
  EXPECT_EQ(P.freeBlocks(), 8u);
}

TEST(BlockPool, ForEachBlock) {
  BlockPool P(kHeapBase, 8 * kBlockBytes);
  P.allocBlock(SpaceId::Nursery);
  P.allocBlock(SpaceId::Mature);
  P.allocBlock(SpaceId::Nursery);
  int Count = 0;
  P.forEachBlock(SpaceId::Nursery, [&](Address) { ++Count; });
  EXPECT_EQ(Count, 2);
}

TEST(BlockPool, OwnerOfOutsideRangeIsFree) {
  BlockPool P(kHeapBase, 2 * kBlockBytes);
  EXPECT_EQ(P.ownerOf(kHeapBase - 4), SpaceId::Free);
  EXPECT_EQ(P.ownerOf(P.limit()), SpaceId::Free);
}
