//===-- tests/heap/FreeListAllocatorTest.cpp ------------------------------===//

#include "heap/AddressSpace.h"
#include "heap/FreeListAllocator.h"

#include <gtest/gtest.h>

#include <set>

using namespace hpmvm;

namespace {

struct Rig {
  BlockPool Pool{kHeapBase, 16 * kBlockBytes};
  FreeListAllocator A{Pool};
};

} // namespace

TEST(FreeList, DistinctCellsSameBlockForSameClass) {
  Rig R;
  Address A1 = R.A.alloc(30); // Class 32.
  Address A2 = R.A.alloc(32);
  EXPECT_NE(A1, A2);
  EXPECT_EQ(R.Pool.blockBase(A1), R.Pool.blockBase(A2));
  EXPECT_EQ(R.A.cellSizeAt(A1), 32u);
}

TEST(FreeList, DifferentClassesDifferentBlocks) {
  Rig R;
  Address Small = R.A.alloc(32);
  Address Big = R.A.alloc(1000); // Class 1024.
  EXPECT_NE(R.Pool.blockBase(Small), R.Pool.blockBase(Big));
  EXPECT_EQ(R.A.cellSizeAt(Big), 1024u);
}

TEST(FreeList, CellsAreDisjoint) {
  Rig R;
  std::set<Address> Cells;
  for (int I = 0; I != 500; ++I) {
    Address C = R.A.alloc(48);
    EXPECT_TRUE(Cells.insert(C).second);
    // Cells of class 48 are 48 bytes apart within a block.
    EXPECT_EQ((C - R.Pool.blockBase(C)) % 48, 0u);
  }
}

TEST(FreeList, GrowsBlocksWhenFull) {
  Rig R;
  // A 64 KB block of 4096-byte cells holds 16 cells.
  for (int I = 0; I != 16; ++I)
    R.A.alloc(4096);
  EXPECT_EQ(R.A.blocksOwned(), 1u);
  R.A.alloc(4096);
  EXPECT_EQ(R.A.blocksOwned(), 2u);
}

TEST(FreeList, SweepFreesDeadAndReusesCells) {
  Rig R;
  Address A1 = R.A.alloc(64);
  Address A2 = R.A.alloc(64);
  Address A3 = R.A.alloc(64);
  (void)A2;
  // Keep A1 and A3 live.
  R.A.sweep([&](Address C) { return C == A1 || C == A3; });
  EXPECT_EQ(R.A.stats().CellsInUse, 2u);
  EXPECT_TRUE(R.A.isInUseCell(A1));
  EXPECT_FALSE(R.A.isInUseCell(A2));
  // The freed cell is reusable.
  Address A4 = R.A.alloc(64);
  EXPECT_EQ(A4, A2);
}

TEST(FreeList, EmptyBlocksReturnToPool) {
  Rig R;
  for (int I = 0; I != 100; ++I)
    R.A.alloc(512);
  uint32_t FreeBefore = R.Pool.freeBlocks();
  R.A.sweep([](Address) { return false; }); // Everything dies.
  EXPECT_EQ(R.A.blocksOwned(), 0u);
  EXPECT_GT(R.Pool.freeBlocks(), FreeBefore);
  EXPECT_EQ(R.A.stats().CellsInUse, 0u);
}

TEST(FreeList, SweepReturnsFreedCount) {
  Rig R;
  for (int I = 0; I != 10; ++I)
    R.A.alloc(128);
  uint32_t Freed = R.A.sweep([](Address) { return false; });
  EXPECT_EQ(Freed, 10u);
}

TEST(FreeList, WasteAccounting) {
  Rig R;
  R.A.alloc(30); // Class 32: waste 2.
  R.A.alloc(90); // Class 96: waste 6.
  EXPECT_EQ(R.A.stats().BytesRequested, 120u);
  EXPECT_EQ(R.A.stats().BytesWasted, 8u);
}

TEST(FreeList, ForEachCellVisitsLiveOnly) {
  Rig R;
  Address A1 = R.A.alloc(64);
  Address A2 = R.A.alloc(64);
  R.A.sweep([&](Address C) { return C == A2; });
  (void)A1;
  std::vector<Address> Seen;
  R.A.forEachCell([&](Address C) { Seen.push_back(C); });
  ASSERT_EQ(Seen.size(), 1u);
  EXPECT_EQ(Seen[0], A2);
}

TEST(FreeList, PoolExhaustionReturnsNull) {
  BlockPool Tiny(kHeapBase, 1 * kBlockBytes);
  FreeListAllocator A(Tiny);
  Tiny.allocBlock(SpaceId::Los); // Steal the only block.
  EXPECT_EQ(A.alloc(64), kNullRef);
}
