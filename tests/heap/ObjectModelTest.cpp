//===-- tests/heap/ObjectModelTest.cpp ------------------------------------===//

#include "heap/ObjectModel.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  HeapMemory Mem{kHeapBase, 1 << 20};
  HeapClassTable Classes;
  ClassId Node;
  ClassId IntArr;
  ClassId RefArr;
  ClassId CharArr;
  ObjectModel Model{Mem, Classes};

  Rig() {
    // Node { ref a; int b; ref c; } -> refs at offsets 16 and 24.
    Node = Classes.addScalarClass("Node", 3, {16, 24});
    IntArr = Classes.addArrayClass("int[]", ElemKind::I32);
    RefArr = Classes.addArrayClass("ref[]", ElemKind::Ref);
    CharArr = Classes.addArrayClass("char[]", ElemKind::I16);
  }
};

} // namespace

TEST(ObjectModel, ScalarSizeIsAlignedHeaderPlusFields) {
  Rig R;
  // 16-byte header + 3*4 bytes fields = 28, aligned to 32.
  EXPECT_EQ(R.Model.scalarObjectBytes(R.Node), 32u);
}

TEST(ObjectModel, ArraySizesPerElementKind) {
  Rig R;
  EXPECT_EQ(R.Model.arrayObjectBytes(R.IntArr, 0), 16u);
  EXPECT_EQ(R.Model.arrayObjectBytes(R.IntArr, 4), 32u);
  EXPECT_EQ(R.Model.arrayObjectBytes(R.CharArr, 12), 40u);
  EXPECT_EQ(R.Model.arrayObjectBytes(R.CharArr, 13), 48u); // 42 -> 48.
  EXPECT_EQ(R.Model.arrayObjectBytes(R.RefArr, 2), 24u);
}

TEST(ObjectModel, HeaderRoundTrip) {
  Rig R;
  Address Obj = kHeapBase + 64;
  R.Model.initObject(Obj, R.Node, 32, 0);
  EXPECT_EQ(R.Model.classOf(Obj), R.Node);
  EXPECT_EQ(R.Model.sizeOf(Obj), 32u);
  EXPECT_EQ(R.Model.flagsOf(Obj), 0u);
  EXPECT_FALSE(R.Model.isForwarded(Obj));
}

TEST(ObjectModel, FlagOperations) {
  Rig R;
  Address Obj = kHeapBase + 64;
  R.Model.initObject(Obj, R.Node, 32, 0);
  R.Model.orFlag(Obj, objheader::kMarkBit);
  R.Model.orFlag(Obj, objheader::kCoallocBit);
  EXPECT_TRUE(R.Model.testFlag(Obj, objheader::kMarkBit));
  EXPECT_TRUE(R.Model.testFlag(Obj, objheader::kCoallocBit));
  R.Model.clearFlag(Obj, objheader::kMarkBit);
  EXPECT_FALSE(R.Model.testFlag(Obj, objheader::kMarkBit));
  EXPECT_TRUE(R.Model.testFlag(Obj, objheader::kCoallocBit));
}

TEST(ObjectModel, Forwarding) {
  Rig R;
  Address Obj = kHeapBase + 64, NewObj = kHeapBase + 256;
  R.Model.initObject(Obj, R.Node, 32, 0);
  R.Model.forwardTo(Obj, NewObj);
  EXPECT_TRUE(R.Model.isForwarded(Obj));
  EXPECT_EQ(R.Model.forwardingAddress(Obj), NewObj);
}

TEST(ObjectModel, RefSlotIterationScalar) {
  Rig R;
  Address Obj = kHeapBase + 64;
  R.Model.initObject(Obj, R.Node, 32, 0);
  std::vector<Address> Slots;
  R.Model.forEachRefSlot(Obj, [&](Address S) { Slots.push_back(S); });
  ASSERT_EQ(Slots.size(), 2u);
  EXPECT_EQ(Slots[0], Obj + 16);
  EXPECT_EQ(Slots[1], Obj + 24);
}

TEST(ObjectModel, RefSlotIterationRefArray) {
  Rig R;
  Address Obj = kHeapBase + 64;
  R.Model.initObject(Obj, R.RefArr, R.Model.arrayObjectBytes(R.RefArr, 3),
                     3);
  EXPECT_EQ(R.Model.arrayLength(Obj), 3u);
  std::vector<Address> Slots;
  R.Model.forEachRefSlot(Obj, [&](Address S) { Slots.push_back(S); });
  ASSERT_EQ(Slots.size(), 3u);
  EXPECT_EQ(Slots[0], Obj + objheader::kHeaderBytes);
  EXPECT_EQ(Slots[2], Obj + objheader::kHeaderBytes + 8);
}

TEST(ObjectModel, PrimitiveArrayHasNoRefSlots) {
  Rig R;
  Address Obj = kHeapBase + 64;
  R.Model.initObject(Obj, R.IntArr, R.Model.arrayObjectBytes(R.IntArr, 8),
                     8);
  int Count = 0;
  R.Model.forEachRefSlot(Obj, [&](Address) { ++Count; });
  EXPECT_EQ(Count, 0);
}

TEST(ObjectModel, ElementAddress) {
  Rig R;
  Address Obj = kHeapBase + 64;
  R.Model.initObject(Obj, R.CharArr, R.Model.arrayObjectBytes(R.CharArr, 10),
                     10);
  EXPECT_EQ(R.Model.elementAddress(Obj, 0), Obj + 16);
  EXPECT_EQ(R.Model.elementAddress(Obj, 5), Obj + 16 + 10);
}

TEST(ObjectModel, InitZeroFillsBody) {
  Rig R;
  Address Obj = kHeapBase + 64;
  R.Mem.writeWord(Obj + 16, 0xdeadbeef);
  R.Model.initObject(Obj, R.Node, 32, 0);
  EXPECT_EQ(R.Mem.readWord(Obj + 16), 0u);
}
