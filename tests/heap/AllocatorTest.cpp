//===-- tests/heap/AllocatorTest.cpp --------------------------------------===//
//
// BumpAllocator and BlockedBumpAllocator behaviour.
//
//===----------------------------------------------------------------------===//

#include "heap/AddressSpace.h"
#include "heap/BlockedBumpAllocator.h"
#include "heap/BumpAllocator.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(BumpAllocator, SequentialAllocation) {
  BumpAllocator A(kHeapBase, kHeapBase + 256);
  EXPECT_EQ(A.alloc(64), kHeapBase);
  EXPECT_EQ(A.alloc(32), kHeapBase + 64);
  EXPECT_EQ(A.usedBytes(), 96u);
  EXPECT_EQ(A.freeBytes(), 160u);
}

TEST(BumpAllocator, ExhaustionAndReset) {
  BumpAllocator A(kHeapBase, kHeapBase + 64);
  EXPECT_NE(A.alloc(64), kNullRef);
  EXPECT_EQ(A.alloc(8), kNullRef);
  A.reset();
  EXPECT_EQ(A.alloc(8), kHeapBase);
}

TEST(BumpAllocator, Containment) {
  BumpAllocator A(kHeapBase, kHeapBase + 128);
  A.alloc(32);
  EXPECT_TRUE(A.containsAllocated(kHeapBase));
  EXPECT_TRUE(A.containsAllocated(kHeapBase + 31));
  EXPECT_FALSE(A.containsAllocated(kHeapBase + 32)); // Past the cursor.
  EXPECT_TRUE(A.containsRange(kHeapBase + 100));
}

TEST(BlockedBump, ChainsBlocksUpToBudget) {
  BlockPool Pool(kHeapBase, 8 * kBlockBytes);
  BlockedBumpAllocator A(Pool, SpaceId::Nursery);
  A.setBlockBudget(2);
  // Fill the first block with 1 KB objects: 64 of them.
  for (int I = 0; I != 64; ++I)
    EXPECT_NE(A.alloc(1024), kNullRef);
  EXPECT_EQ(A.blocksOwned(), 1u);
  EXPECT_NE(A.alloc(1024), kNullRef); // Second block chained.
  EXPECT_EQ(A.blocksOwned(), 2u);
  // Budget reached: filling block 2 then asking more must fail.
  for (int I = 0; I != 63; ++I)
    EXPECT_NE(A.alloc(1024), kNullRef);
  EXPECT_EQ(A.alloc(1024), kNullRef);
}

TEST(BlockedBump, ReleaseAllReturnsBlocks) {
  BlockPool Pool(kHeapBase, 4 * kBlockBytes);
  BlockedBumpAllocator A(Pool, SpaceId::Nursery);
  A.setBlockBudget(4);
  for (int I = 0; I != 100; ++I)
    A.alloc(4096);
  EXPECT_GT(A.blocksOwned(), 1u);
  A.releaseAll();
  EXPECT_EQ(A.blocksOwned(), 0u);
  EXPECT_EQ(Pool.freeBlocks(), 4u);
  EXPECT_EQ(A.usedBytes(), 0u);
}

TEST(BlockedBump, ContainsAllocatedRespectsFillLines) {
  BlockPool Pool(kHeapBase, 4 * kBlockBytes);
  BlockedBumpAllocator A(Pool, SpaceId::Nursery);
  A.setBlockBudget(4);
  Address X = A.alloc(64);
  EXPECT_TRUE(A.containsAllocated(X));
  EXPECT_TRUE(A.containsAllocated(X + 63));
  EXPECT_FALSE(A.containsAllocated(X + 64));
}

TEST(BlockedBump, ObjectWalkVisitsAllInOrder) {
  BlockPool Pool(kHeapBase, 4 * kBlockBytes);
  BlockedBumpAllocator A(Pool, SpaceId::Nursery);
  A.setBlockBudget(4);
  std::vector<Address> Allocated;
  // Mix of sizes crossing a block boundary.
  for (int I = 0; I != 40; ++I)
    Allocated.push_back(A.alloc(I % 2 ? 4096 : 64));
  std::vector<Address> Walked;
  A.forEachObject([&](Address Obj) -> uint32_t {
    Walked.push_back(Obj);
    size_t Idx = Walked.size() - 1;
    return Idx % 2 ? 4096 : 64;
  });
  EXPECT_EQ(Walked, Allocated);
}

TEST(BlockedBump, HeadroomAccountsBudgetAndPool) {
  BlockPool Pool(kHeapBase, 2 * kBlockBytes);
  BlockedBumpAllocator A(Pool, SpaceId::Nursery);
  A.setBlockBudget(8); // Budget larger than the pool.
  EXPECT_EQ(A.headroomBytes(), 2 * kBlockBytes);
  A.alloc(1024);
  EXPECT_EQ(A.headroomBytes(), 2 * kBlockBytes - 1024);
}
