// R4 fixture: pointer-keyed container and pointer-value formatting in an
// export-writing file (the TableWriter mention is the scope marker). Two
// R4 findings expected.
#include <cstdio>
#include <map>

namespace fixture {

class TableWriter; // Export-path marker: this file writes tables.

struct Method;

struct HotSet {
  std::map<Method *, long> Samples; // pointer-keyed: ASLR-ordered
};

inline void dump(FILE *Out, const Method *M) {
  fprintf(Out, "method at %p\n", static_cast<const void *>(M));
}

} // namespace fixture
