// R2 conforming fixture: same export-path file shape, but with ordered
// containers, so emission order is the key order -- deterministic.
#include <map>
#include <set>
#include <string>

namespace fixture {

class DecisionJournal; // Export-path marker: this file journals.

struct HintState {
  std::map<int, long> PerField;
  std::set<std::string> SeenLabels;
  DecisionJournal *Journal = nullptr;
};

} // namespace fixture
