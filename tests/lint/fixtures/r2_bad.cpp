// R2 fixture: unordered containers in a file on the export path (the
// DecisionJournal mention below puts it in scope regardless of its
// directory). Two R2 findings expected, at the marked lines.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class DecisionJournal; // Export-path marker: this file journals.

struct HintState {
  std::unordered_map<int, long> PerField;     // line 13: R2
  std::unordered_set<std::string> SeenLabels; // line 14: R2
  DecisionJournal *Journal = nullptr;
};

} // namespace fixture
