// R5 fixture: a bench-style main (scanned under a bench/ virtual path)
// that consumes argv by hand -- no flags::ArgScanner, no bench::init, so
// a typo'd flag would be silently ignored. One R5 finding expected.
int main(int Argc, char **Argv) {
  int Scale = 100;
  for (int I = 1; I < Argc; ++I) {
    // Hand-rolled matching: unknown flags fall through silently.
    if (Argv[I][0] == '-' && Argv[I][1] == 's')
      Scale = 25;
  }
  return Scale == 0;
}
