// R7 conforming twin: same memsim inclusion, but labels are interned
// const char* and ids -- no std::string members or parameters. Locals are
// fine even in scope.
#include "memsim/MemoryHierarchy.h"

#include <string>

struct HotRecord {
  const char *Label = ""; // Interned elsewhere; POD on the hot path.
  int Id = 0;
};

void recordMiss(const char *Label, int Count);
void recordMissById(unsigned LabelId, int Count);

int countFor(HotRecord &R) {
  std::string Scratch = std::string(R.Label) + "/miss"; // Local: legal.
  return static_cast<int>(Scratch.size());
}
