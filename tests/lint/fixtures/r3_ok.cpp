// R3 conforming fixture: diagnostics through the Log sink, data through
// an explicitly opened FILE* (the export-writer shape) -- fprintf to a
// named stream is legal everywhere; only console streams are not.
#include <cstdio>

namespace fixture {

void logInfo(const char *Component, const char *Message);

void exportRows(FILE *Out, int Rows) {
  logInfo("exporter", "writing rows");
  fprintf(Out, "{\"rows\": %d}\n", Rows);
}

} // namespace fixture
