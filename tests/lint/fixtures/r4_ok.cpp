// R4 conforming fixture: stable integer ids as keys and in output; the
// percent sign in ordinary format strings ("%llu", "100%") is fine.
#include <cstdio>
#include <map>

namespace fixture {

class TableWriter; // Export-path marker: this file writes tables.

using MethodId = unsigned;

struct HotSet {
  std::map<MethodId, long> Samples;
};

inline void dump(FILE *Out, MethodId M, unsigned long long N) {
  fprintf(Out, "method %u: %llu samples (100%% of window)\n", M, N);
}

} // namespace fixture
