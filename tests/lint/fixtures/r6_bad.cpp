// R6 fixture: an output-path flag ("--report-out") parsed without the
// shared ensureParentDir mkdir-or-exit-2 helper anywhere in the file.
// One R6 finding expected, on the literal's line.
#include <string>

namespace fixture {

struct Scanner {
  bool take(const char *Flag, std::string &Value);
};

inline std::string parseOutPath(Scanner &S) {
  std::string Path;
  S.take("--report-out", Path); // No ensureParentDir in this file.
  return Path;
}

} // namespace fixture
