// R5 conforming fixture: the bench-main shape -- every argument goes
// through flags::ArgScanner, and anything unknown fails the scan, which
// the caller turns into exit 2.
namespace hpmvm::flags {
class ArgScanner {
public:
  ArgScanner(int &Argc, char **Argv);
  bool next();
  void keepUnknown();
  bool ok() const;
};
} // namespace hpmvm::flags

int main(int Argc, char **Argv) {
  hpmvm::flags::ArgScanner S(Argc, Argv);
  while (S.next())
    S.keepUnknown();
  return S.ok() ? 0 : 2;
}
