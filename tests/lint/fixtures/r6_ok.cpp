// R6 conforming fixture: the out-path flag's value goes through the
// shared ensureParentDir helper, so a bad path fails at parse time with
// exit 2 instead of at run end.
#include <string>

namespace fixture {

bool ensureParentDir(const std::string &Path);

struct Scanner {
  bool take(const char *Flag, std::string &Value);
  void fail();
};

inline std::string parseOutPath(Scanner &S) {
  std::string Path;
  if (S.take("--report-out", Path) && !ensureParentDir(Path))
    S.fail(); // Caller exits 2, naming the path.
  return Path;
}

} // namespace fixture
