// R3 fixture: raw console output from library code (scanned under a
// src/core virtual path, which is not on the R3 allowlist). Three R3
// findings expected: printf, fprintf(stderr), and std::cerr.
#include <cstdio>
#include <iostream>

namespace fixture {

void reportProgress(int Done) {
  printf("done: %d\n", Done);
  fprintf(stderr, "warning: slow path\n");
  std::cerr << "still running\n";
}

} // namespace fixture
