// R7 violation corpus: this file "includes" a memsim header (the raw-text
// scope trigger), so std::string members and parameters are hot-path
// label plumbing and must be interned const char* / numeric ids instead.
#include "memsim/MemoryHierarchy.h"

#include <string>

struct HotRecord {
  std::string Label; // BAD: member on a memsim hot path.
  int Id = 0;
};

void recordMiss(const std::string &Label, int Count); // BAD: parameter.

int countFor(HotRecord &R) {
  // Locals and temporaries stay legal: the rule bans persistent label
  // plumbing, not scratch strings inside one function.
  std::string Scratch = R.Label + "/miss";
  return static_cast<int>(Scratch.size());
}
