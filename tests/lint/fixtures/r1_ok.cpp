// R1 conforming fixture: seeded SplitMix64 and the virtual clock. Member
// calls named like libc functions (Vm.clock(), builder .rand()) are legal
// -- only free-function wall-clock/randomness calls violate R1.
namespace fixture {

struct SplitMix64 {
  unsigned long long State;
  explicit SplitMix64(unsigned long long Seed) : State(Seed) {}
  unsigned long long next() { return State += 0x9e3779b97f4a7c15ull; }
};

struct Clock {
  unsigned long long Now = 0;
  unsigned long long now() const { return Now; }
};

struct Vm {
  Clock C;
  const Clock &clock() const { return C; }
  Vm &rand() { return *this; } // A seeded bytecode op, not libc rand.
};

unsigned long long roll(unsigned long long Seed) {
  SplitMix64 Rng(Seed);
  Vm Machine;
  Machine.rand();
  return Rng.next() + Machine.clock().now();
}

} // namespace fixture
