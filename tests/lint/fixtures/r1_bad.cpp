// R1 fixture: wall-clock reads and ambient randomness. The lint test
// scans this file under the virtual path "src/core/R1Fixture.cpp" and
// expects exactly three R1 findings, at the lines marked below.
#include <chrono>
#include <cstdlib>

namespace fixture {

long hostNow() {
  auto T = std::chrono::steady_clock::now(); // line 10: R1 (steady_clock)
  return T.time_since_epoch().count();
}

int ambientRoll() {
  return std::rand() % 6; // line 15: R1 (rand)
}

long wallSeconds() {
  return time(nullptr); // line 19: R1 (time)
}

} // namespace fixture
