//===-- tests/lint/LintTest.cpp - hpmvm_lint engine and gate tests --------===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
// Three layers of coverage for the determinism linter (DESIGN.md sec. 14):
//
//   1. Fixture corpus: every rule R1-R6 has one minimal violating and one
//      conforming fixture under tests/lint/fixtures/; the violating set is
//      asserted down to exact (rule, line) pairs, the conforming set down
//      to zero findings. Fixtures are linted in process under *virtual
//      paths* so the path-scoped rules (R3's allowlist, R5's bench/tools
//      restriction) see the layout they scope on.
//   2. Suppression machinery: parse errors, the mandatory "# Why:"
//      justification, component-boundary path matching, line pinning.
//   3. The real tree and the real binary: `hpmvm_lint` over the repo's
//      src/bench/tools/tests with the checked-in lint.supp must report
//      zero unsuppressed findings, and --error-on-new must fail (exit 1)
//      on the seeded fixture violations -- the CI gate, demonstrated.
//
// Paths come in via compile definitions: HPMVM_LINT_FIXTURES (the corpus),
// HPMVM_LINT_REPO_ROOT (scan roots + lint.supp), HPMVM_LINT_BIN (the
// built binary).
//
//===----------------------------------------------------------------------===//

#include "LintEngine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <vector>

using namespace hpmvm;
using namespace hpmvm::lint;

namespace {

std::string readFixture(const std::string &Name) {
  std::string Path = std::string(HPMVM_LINT_FIXTURES) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read fixture " << Path;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

/// Lints fixture \p Name as if it lived at \p VirtualPath; returns
/// (rule, line) pairs in report order.
std::vector<std::pair<std::string, unsigned>>
lintFixture(const std::string &Name, const std::string &VirtualPath) {
  std::vector<std::pair<std::string, unsigned>> Out;
  for (const Finding &F : lintSource(VirtualPath, readFixture(Name)))
    Out.emplace_back(F.Rule, F.Line);
  return Out;
}

using Expected = std::vector<std::pair<std::string, unsigned>>;

/// Runs a command line, captures stdout+stderr, returns the exit code.
int runTool(const std::string &Cmd, std::string &Output) {
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  EXPECT_NE(P, nullptr) << "popen failed for: " << Cmd;
  if (!P)
    return -1;
  char Buf[4096];
  Output.clear();
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Output.append(Buf, N);
  int Status = pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. Fixture corpus: exact findings on the violating set
//===----------------------------------------------------------------------===//

TEST(LintFixtures, R1WallClockAndRandomness) {
  EXPECT_EQ(lintFixture("r1_bad.cpp", "src/core/R1Fixture.cpp"),
            (Expected{{"R1", 10}, {"R1", 15}, {"R1", 19}}));
  EXPECT_EQ(lintFixture("r1_ok.cpp", "src/core/R1Fixture.cpp"), Expected{});
}

TEST(LintFixtures, R2UnorderedContainersOnExportPath) {
  EXPECT_EQ(lintFixture("r2_bad.cpp", "src/obs/R2Fixture.cpp"),
            (Expected{{"R2", 13}, {"R2", 14}}));
  EXPECT_EQ(lintFixture("r2_ok.cpp", "src/obs/R2Fixture.cpp"), Expected{});
  // The content marker (DecisionJournal) puts journal-writing files in
  // scope wherever they live, not just under the export directories.
  EXPECT_EQ(lintFixture("r2_bad.cpp", "src/core/R2Fixture.cpp"),
            (Expected{{"R2", 13}, {"R2", 14}}));
}

TEST(LintFixtures, R3RawConsoleOutput) {
  EXPECT_EQ(lintFixture("r3_bad.cpp", "src/core/R3Fixture.cpp"),
            (Expected{{"R3", 10}, {"R3", 11}, {"R3", 12}}));
  EXPECT_EQ(lintFixture("r3_ok.cpp", "src/core/R3Fixture.cpp"), Expected{});
  // The same raw prints are legal in a bench main: bench/ and tools/ are
  // the user interface and sit on the R3 allowlist.
  EXPECT_EQ(lintFixture("r3_bad.cpp", "bench/R3Fixture.cpp"), Expected{});
}

TEST(LintFixtures, R4PointerKeysAndPointerFormatting) {
  EXPECT_EQ(lintFixture("r4_bad.cpp", "src/obs/R4Fixture.cpp"),
            (Expected{{"R4", 14}, {"R4", 18}}));
  EXPECT_EQ(lintFixture("r4_ok.cpp", "src/obs/R4Fixture.cpp"), Expected{});
}

TEST(LintFixtures, R5BenchMainsValidateFlags) {
  EXPECT_EQ(lintFixture("r5_bad.cpp", "bench/R5Fixture.cpp"),
            (Expected{{"R5", 4}}));
  EXPECT_EQ(lintFixture("r5_ok.cpp", "bench/R5Fixture.cpp"), Expected{});
  EXPECT_EQ(lintFixture("r5_bad.cpp", "tools/R5Fixture.cpp"),
            (Expected{{"R5", 4}}));
  // Outside bench/ and tools/ the rule does not apply (tests and examples
  // have mains the suite layer owns).
  EXPECT_EQ(lintFixture("r5_bad.cpp", "src/core/R5Fixture.cpp"),
            Expected{});
}

TEST(LintFixtures, R6OutFlagsUseEnsureParentDir) {
  EXPECT_EQ(lintFixture("r6_bad.cpp", "bench/R6Fixture.cpp"),
            (Expected{{"R6", 14}}));
  EXPECT_EQ(lintFixture("r6_ok.cpp", "bench/R6Fixture.cpp"), Expected{});
}

TEST(LintFixtures, R7HotPathStringMembersAndParams) {
  // Scope is raw-text inclusion, so the same findings come back wherever
  // the file lives; members and parameters violate, locals do not.
  EXPECT_EQ(lintFixture("r7_bad.cpp", "src/core/R7Fixture.cpp"),
            (Expected{{"R7", 9}, {"R7", 13}}));
  EXPECT_EQ(lintFixture("r7_bad.cpp", "bench/R7Fixture.cpp"),
            (Expected{{"R7", 9}, {"R7", 13}}));
  EXPECT_EQ(lintFixture("r7_ok.cpp", "src/core/R7Fixture.cpp"), Expected{});
}

TEST(LintFixtures, R7ScopesOnRawIncludeText) {
  // Without the memsim / SampleConsumer include, the identical
  // declarations are out of scope: R7 is a hot-path rule, not a global
  // std::string ban.
  const char *NoInclude = "#include <string>\n"
                          "struct R { std::string Label; };\n"
                          "void f(const std::string &S);\n";
  EXPECT_TRUE(lintSource("src/core/E.cpp", NoInclude).empty());
  const char *Consumer = "#include \"core/SampleConsumer.h\"\n"
                         "struct R { std::string Label; };\n";
  EXPECT_EQ(lintSource("src/core/E.cpp", Consumer).size(), 1u);
  // Function bodies -- locals, temporaries -- stay legal in scope, and
  // template type parameters must not derail the scope tracker.
  const char *Locals = "#include \"memsim/Cache.h\"\n"
                       "template <class T> int f(T V) {\n"
                       "  std::string S = name(V);\n"
                       "  return static_cast<int>(S.size());\n"
                       "}\n";
  EXPECT_TRUE(lintSource("src/core/E.cpp", Locals).empty());
}

//===----------------------------------------------------------------------===//
// Lexer edge cases: rules must not fire inside comments or literals
//===----------------------------------------------------------------------===//

TEST(LintLexer, CommentsAndLiteralsAreInvisible) {
  const char *Text = "// steady_clock rand() printf\n"
                     "/* std::unordered_map<int,int> cerr */\n"
                     "const char *S = \"rand() time(0) %d\";\n"
                     "int X = 1'000;\n";
  EXPECT_TRUE(lintSource("src/obs/Edge.cpp", Text).empty());
}

TEST(LintLexer, IncludeHeaderNamesAreNotCode) {
  // <random> and <unordered_map> may be *named*; only their use violates.
  const char *Text = "#include <random>\n#include <unordered_map>\n"
                     "#include <chrono>\nint x = 0;\n";
  EXPECT_TRUE(lintSource("src/obs/Edge.cpp", Text).empty());
}

TEST(LintLexer, MemberAndQualifiedCallsAreScoped) {
  // Member calls and non-std qualification are legal; std:: is not.
  EXPECT_TRUE(lintSource("src/core/E.cpp", "int y = B.rand();").empty());
  EXPECT_TRUE(
      lintSource("src/core/E.cpp", "int y = Builder::rand();").empty());
  EXPECT_EQ(lintSource("src/core/E.cpp", "int y = std::rand();").size(),
            1u);
}

//===----------------------------------------------------------------------===//
// 2. Suppression machinery
//===----------------------------------------------------------------------===//

TEST(LintSupp, JustifiedEntriesParse) {
  SuppFile S = parseSuppressions("# Why: sanctioned host-clock site.\n"
                                 "R1 src/obs/SelfProfiler.h:66\n");
  ASSERT_TRUE(S.Errors.empty());
  ASSERT_EQ(S.Entries.size(), 1u);
  EXPECT_EQ(S.Entries[0].Rule, "R1");
  EXPECT_EQ(S.Entries[0].PathSuffix, "src/obs/SelfProfiler.h");
  EXPECT_EQ(S.Entries[0].Line, 66u);
  EXPECT_TRUE(S.Entries[0].Justified);
}

TEST(LintSupp, UnjustifiedEntryIsAnError) {
  SuppFile S = parseSuppressions("R1 src/obs/SelfProfiler.h\n");
  ASSERT_EQ(S.Errors.size(), 1u);
  EXPECT_NE(S.Errors[0].find("Why:"), std::string::npos);
}

TEST(LintSupp, BlankLineEndsJustificationBlock) {
  // The "# Why:" must sit directly above its entries; a blank line in
  // between orphans the entry.
  SuppFile S = parseSuppressions("# Why: something.\n\nR1 src/a.cpp\n");
  ASSERT_EQ(S.Errors.size(), 1u);
}

TEST(LintSupp, MalformedAndUnknownRulesAreErrors) {
  EXPECT_EQ(parseSuppressions("# Why: x.\nR1\n").Errors.size(), 1u);
  EXPECT_EQ(parseSuppressions("# Why: x.\nR9 src/a.cpp\n").Errors.size(),
            1u);
}

TEST(LintSupp, MatchingIsComponentAndLineExact) {
  std::vector<Finding> Fs = {
      {"src/obs/SelfProfiler.h", 66, "R1", "m", false},
      {"src/obs/SelfProfiler.h", 70, "R1", "m", false},
      {"src/obs/NotSelfProfiler.h", 66, "R1", "m", false},
  };
  SuppFile S = parseSuppressions("# Why: x.\nR1 SelfProfiler.h:66\n");
  applySuppressions(Fs, S);
  EXPECT_TRUE(Fs[0].Suppressed);  // Exact file + line.
  EXPECT_FALSE(Fs[1].Suppressed); // Line pin excludes other lines.
  // "SelfProfiler.h" must not match inside "NotSelfProfiler.h".
  EXPECT_FALSE(Fs[2].Suppressed);
  EXPECT_TRUE(S.Entries[0].Used);
}

//===----------------------------------------------------------------------===//
// 3. The real tree and the real binary
//===----------------------------------------------------------------------===//

TEST(LintTree, RepoIsCleanUnderCheckedInSuppressions) {
  std::string Root(HPMVM_LINT_REPO_ROOT);
  std::vector<std::string> Files;
  std::string Error;
  for (const char *Sub : {"/src", "/bench", "/tools", "/tests"})
    ASSERT_TRUE(collectFiles(Root + Sub, Files, Error)) << Error;
  ASSERT_GT(Files.size(), 200u) << "scan missed most of the tree";

  std::ifstream In(Root + "/lint.supp");
  ASSERT_TRUE(In.good()) << "missing checked-in lint.supp";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  SuppFile Supp = parseSuppressions(Ss.str());
  ASSERT_TRUE(Supp.Errors.empty())
      << "lint.supp rejected: " << Supp.Errors[0];

  std::vector<Finding> All;
  for (const std::string &File : Files) {
    std::ifstream F(File);
    std::ostringstream Fs;
    Fs << F.rdbuf();
    for (Finding &Fd : lintSource(File, Fs.str()))
      All.push_back(std::move(Fd));
  }
  applySuppressions(All, Supp);
  for (const Finding &F : All)
    EXPECT_TRUE(F.Suppressed) << F.File << ":" << F.Line << ": " << F.Rule
                              << ": " << F.Message;
  for (const SuppEntry &E : Supp.Entries)
    EXPECT_TRUE(E.Used) << "stale lint.supp entry: " << E.Rule << " "
                        << E.PathSuffix;
}

TEST(LintTree, FixtureCorpusIsExcludedFromTreeScans) {
  // The deliberately violating corpus must never taint a tree scan: the
  // walker skips tests/lint/fixtures (and any build*/ directory).
  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(
      collectFiles(std::string(HPMVM_LINT_REPO_ROOT) + "/tests", Files,
                   Error))
      << Error;
  for (const std::string &F : Files)
    EXPECT_EQ(F.find("lint/fixtures"), std::string::npos) << F;
}

TEST(LintBinary, ErrorOnNewFailsOnSeededViolation) {
  // The CI gate, demonstrated end to end: pointed at the violating
  // corpus, --error-on-new must exit 1 and name rules and lines.
  std::string Out;
  int Rc = runTool(std::string(HPMVM_LINT_BIN) + " --error-on-new " +
                       HPMVM_LINT_FIXTURES,
                   Out);
  EXPECT_EQ(Rc, 1) << Out;
  EXPECT_NE(Out.find("r1_bad.cpp:10: R1:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("r6_bad.cpp:14: R6:"), std::string::npos) << Out;
}

TEST(LintBinary, CleanTreeExitsZeroUnderGate) {
  std::string Root(HPMVM_LINT_REPO_ROOT);
  std::string Out;
  int Rc = runTool(std::string(HPMVM_LINT_BIN) + " --supp " + Root +
                       "/lint.supp --error-on-new " + Root + "/src " +
                       Root + "/bench " + Root + "/tools " + Root +
                       "/tests",
                   Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find(" 0 findings"), std::string::npos) << Out;
}

TEST(LintBinary, NonexistentAndEmptyRootsExitTwo) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(HPMVM_LINT_BIN) +
                        " --error-on-new /nonexistent/scan/root",
                    Out),
            2);
  EXPECT_NE(Out.find("does not exist"), std::string::npos) << Out;

  std::string Empty = ::testing::TempDir() + "hpmvm_lint_empty_scan";
  mkdir(Empty.c_str(), 0777);
  EXPECT_EQ(runTool(std::string(HPMVM_LINT_BIN) + " " + Empty, Out), 2);
  EXPECT_NE(Out.find("no lintable files"), std::string::npos) << Out;
}

TEST(LintBinary, UnknownFlagsAndUnjustifiedSuppExitTwo) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(HPMVM_LINT_BIN) + " --frobnicate", Out),
            2);
  EXPECT_NE(Out.find("--frobnicate"), std::string::npos) << Out;

  // --check-supp: accepts the checked-in file, rejects one whose entry
  // has no justification (the CI supp-hygiene step).
  std::string Root(HPMVM_LINT_REPO_ROOT);
  EXPECT_EQ(runTool(std::string(HPMVM_LINT_BIN) + " --check-supp " +
                        Root + "/lint.supp",
                    Out),
            0);
  std::string Bad = ::testing::TempDir() + "hpmvm_lint_bad.supp";
  std::ofstream(Bad) << "R1 src/obs/SelfProfiler.h\n";
  EXPECT_EQ(runTool(std::string(HPMVM_LINT_BIN) + " --check-supp " + Bad,
                    Out),
            2);
  EXPECT_NE(Out.find("Why:"), std::string::npos) << Out;
}

TEST(LintBinary, ListRulesPrintsTheCatalog) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(HPMVM_LINT_BIN) + " --list-rules", Out),
            0);
  for (const RuleInfo &R : rules())
    EXPECT_NE(Out.find(R.Id), std::string::npos) << Out;
}
