//===-- tests/workloads/ServerMixTest.cpp ---------------------------------===//

#include "workloads/Workload.h"

#include "gc/GenMSPlan.h"
#include "harness/ExperimentRunner.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// A VM + collector pair big enough to build and run servermix.
struct VmFixture {
  VmFixture() : Vm(config()), Gc(Vm.objects(), Vm.clock(), gcConfig()) {
    Vm.setCollector(&Gc);
  }
  static VmConfig config() {
    VmConfig C;
    C.HeapBytes = 16 * 1024 * 1024;
    return C;
  }
  static CollectorConfig gcConfig() {
    return CollectorConfig{.HeapBytes = 16 * 1024 * 1024};
  }
  VirtualMachine Vm;
  GenMSPlan Gc;
};

} // namespace

TEST(ServerMix, RegisteredAsServerWorkloadNotInTableOne) {
  // The paper's Table 1 registry must stay untouched: servermix lives in
  // the separate server registry so every Table-1-driven bench and test
  // keeps its exact workload set.
  EXPECT_EQ(allWorkloads().size(), 16u);
  for (const WorkloadSpec &S : allWorkloads())
    EXPECT_NE(S.Name, "servermix");

  ASSERT_EQ(serverWorkloads().size(), 1u);
  const WorkloadSpec &Srv = serverWorkloads().front();
  EXPECT_EQ(Srv.Name, "servermix");
  EXPECT_EQ(Srv.Suite, "Server");
  EXPECT_NE(Srv.Build, nullptr);
  // findWorkload spans both registries.
  EXPECT_EQ(findWorkload("servermix"), &Srv);
}

TEST(ServerMix, ProgramHasSetupAndRequestHandlers) {
  VmFixture F;
  WorkloadParams P;
  P.ScalePercent = 10;
  WorkloadProgram Prog = findWorkload("servermix")->Build(F.Vm, P);

  ASSERT_NE(Prog.Main, kInvalidId);
  ASSERT_NE(Prog.Setup, kInvalidId);
  ASSERT_EQ(Prog.RequestHandlers.size(), 3u);
  // Setup and every handler must be directly invocable by the traffic
  // driver: no parameters, void return.
  std::vector<MethodId> Invocable = Prog.RequestHandlers;
  Invocable.push_back(Prog.Setup);
  for (MethodId M : Invocable) {
    ASSERT_NE(M, kInvalidId);
    const Method &Meth = F.Vm.method(M);
    EXPECT_EQ(Meth.NumParams, 0u);
    EXPECT_EQ(Meth.Return, RetKind::Void);
  }
  for (const std::string &Name : Prog.CompilationPlan)
    EXPECT_NE(F.Vm.findMethod(Name), kInvalidId)
        << "compilation plan names unknown method '" << Name << "'";
}

TEST(ServerMix, HandlersRunStandaloneAfterSetup) {
  VmFixture F;
  WorkloadParams P;
  P.ScalePercent = 10;
  WorkloadProgram Prog = findWorkload("servermix")->Build(F.Vm, P);

  F.Vm.run(Prog.Setup);
  uint64_t AfterSetup = F.Vm.stats().BytecodesInterpreted;
  EXPECT_GT(AfterSetup, 0u);
  for (MethodId H : Prog.RequestHandlers) {
    uint64_t Before = F.Vm.stats().BytecodesInterpreted;
    F.Vm.run(H);
    EXPECT_GT(F.Vm.stats().BytecodesInterpreted, Before)
        << "handler did no work";
  }
}

TEST(ServerMix, RunsUnderPlainExperimentDeterministically) {
  // servermix's main is setup + a fixed request schedule, so it must also
  // work -- reproducibly -- as an ordinary one-VM experiment.
  RunConfig C;
  C.Workload = "servermix";
  C.Params.ScalePercent = 10;
  C.Params.Seed = 0xfeedface;
  RunResult A = runExperiment(C);
  RunResult B = runExperiment(C);
  EXPECT_GT(A.Vm.ObjectsAllocated, 0u);
  EXPECT_GT(A.Memory.Accesses, 0u);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.Memory.L1Misses, B.Memory.L1Misses);
  EXPECT_EQ(A.Gc.MinorCollections, B.Gc.MinorCollections);
  EXPECT_EQ(A.Vm.BytecodesInterpreted, B.Vm.BytecodesInterpreted);
}
