//===-- tests/workloads/WorkloadRegistryTest.cpp --------------------------===//

#include "workloads/Workload.h"

#include "gc/GenMSPlan.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <set>

using namespace hpmvm;

TEST(WorkloadRegistry, SixteenProgramsInPaperOrder) {
  const auto &All = allWorkloads();
  ASSERT_EQ(All.size(), 16u);
  // Paper Table 1 order: SPECjvm98, pseudojbb, DaCapo.
  EXPECT_EQ(All.front().Name, "compress");
  EXPECT_EQ(All[7].Name, "pseudojbb");
  EXPECT_EQ(All.back().Name, "pmd");
}

TEST(WorkloadRegistry, NamesUniqueAndFindable) {
  std::set<std::string> Names;
  for (const WorkloadSpec &S : allWorkloads()) {
    EXPECT_TRUE(Names.insert(S.Name).second) << S.Name << " duplicated";
    EXPECT_EQ(findWorkload(S.Name), &S);
    EXPECT_FALSE(S.Suite.empty());
    EXPECT_FALSE(S.Description.empty());
    EXPECT_GE(S.MinHeapBytes, 2u * 1024 * 1024);
    EXPECT_NE(S.Build, nullptr);
  }
  EXPECT_EQ(findWorkload("no-such-benchmark"), nullptr);
}

TEST(WorkloadRegistry, ScaledMinHeapHasAFloor) {
  const WorkloadSpec *Db = findWorkload("db");
  ASSERT_NE(Db, nullptr);
  WorkloadParams P;
  P.ScalePercent = 100;
  EXPECT_EQ(scaledMinHeap(*Db, P), Db->MinHeapBytes);
  P.ScalePercent = 10;
  EXPECT_EQ(scaledMinHeap(*Db, P), 2u * 1024 * 1024) << "2 MB floor";
  P.ScalePercent = 200;
  EXPECT_EQ(scaledMinHeap(*Db, P), 2 * Db->MinHeapBytes);
}

// Every workload's build function must produce a runnable program whose
// compilation plan names only real methods (a typo in a plan string would
// silently fall back to interpretation and skew every experiment).
class WorkloadBuildTest : public testing::TestWithParam<const char *> {};

TEST_P(WorkloadBuildTest, PlanNamesResolveAndMainIsValid) {
  VmConfig VC;
  VC.HeapBytes = 16 * 1024 * 1024;
  VirtualMachine Vm(VC);
  GenMSPlan Gc(Vm.objects(), Vm.clock(),
               CollectorConfig{.HeapBytes = 16 * 1024 * 1024});
  Vm.setCollector(&Gc);

  const WorkloadSpec *Spec = findWorkload(GetParam());
  ASSERT_NE(Spec, nullptr);
  WorkloadParams P;
  P.ScalePercent = 10;
  WorkloadProgram Prog = Spec->Build(Vm, P);

  ASSERT_NE(Prog.Main, kInvalidId);
  const Method &Main = Vm.method(Prog.Main);
  EXPECT_EQ(Main.NumParams, 0u);
  EXPECT_EQ(Main.Return, RetKind::Void);

  ASSERT_FALSE(Prog.CompilationPlan.empty());
  for (const std::string &Name : Prog.CompilationPlan)
    EXPECT_NE(Vm.findMethod(Name), kInvalidId)
        << "compilation plan names unknown method '" << Name << "'";
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadBuildTest,
    testing::Values("compress", "jess", "db", "javac", "mpegaudio", "mtrt",
                    "jack", "pseudojbb", "antlr", "bloat", "fop", "hsqldb",
                    "jython", "luindex", "lusearch", "pmd"),
    [](const testing::TestParamInfo<const char *> &I) {
      return std::string(I.param);
    });
