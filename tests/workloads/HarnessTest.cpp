//===-- tests/workloads/HarnessTest.cpp -----------------------------------===//
//
// The experiment harness must honor every RunConfig knob: the figures'
// comparisons are only valid if the configurations differ in exactly the
// intended dimension.
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

RunConfig smallDb() {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = 15;
  C.Params.Seed = 9;
  C.HeapFactor = 4.0;
  return C;
}

} // namespace

TEST(Harness, HeapFactorSizesTheHeap) {
  RunConfig C = smallDb();
  Experiment E1(C);
  C.HeapFactor = 2.0;
  Experiment E2(C);
  EXPECT_EQ(E1.heapBytes(), 2 * E2.heapBytes());
}

TEST(Harness, HeapBytesOverrideWins) {
  RunConfig C = smallDb();
  C.HeapBytesOverride = 7 * 1024 * 1024;
  Experiment E(C);
  EXPECT_EQ(E.heapBytes(), 7u * 1024 * 1024);
}

TEST(Harness, CollectorKindSelectsThePlan) {
  RunConfig C = smallDb();
  {
    Experiment E(C);
    EXPECT_STREQ(E.collector().name(), "GenMS");
  }
  C.Collector = CollectorKind::GenCopy;
  {
    Experiment E(C);
    EXPECT_STREQ(E.collector().name(), "GenCopy");
  }
}

TEST(Harness, MonitoringOffMeansNoMonitorAndNoSamples) {
  RunResult R = runExperiment(smallDb());
  EXPECT_EQ(R.SamplesTaken, 0u);
  EXPECT_EQ(R.MonitorOverheadCycles, 0u);
  Experiment E(smallDb());
  EXPECT_EQ(E.monitor(), nullptr);
}

TEST(Harness, MonitoringOnWithoutCoallocationNeverPlacesPairs) {
  RunConfig C = smallDb();
  C.Monitoring = true;
  C.Monitor.SamplingInterval = 5000;
  RunResult R = runExperiment(C);
  EXPECT_GT(R.SamplesTaken, 0u);
  EXPECT_EQ(R.CoallocatedPairs, 0u)
      << "observation alone must not change placement";
}

TEST(Harness, PseudoAdaptiveCompilesThePlanUpFront) {
  RunConfig C = smallDb();
  Experiment E(C);
  EXPECT_GT(E.vm().numCompiledFunctions(), 0u);
  // The paper's pseudo-adaptive mode: identical runs compile identical
  // method sets, before the first bytecode executes.
  Experiment E2(C);
  EXPECT_EQ(E.vm().numCompiledFunctions(), E2.vm().numCompiledFunctions());
}

TEST(Harness, AdaptiveModeCompilesDuringTheRun) {
  RunConfig C = smallDb();
  C.PseudoAdaptive = false;
  Experiment E(C);
  EXPECT_EQ(E.vm().numCompiledFunctions(), 0u) << "nothing compiled yet";
  E.run();
  EXPECT_GT(E.vm().numCompiledFunctions(), 0u)
      << "the AOS must find the hot methods on its own";
}

TEST(Harness, MonitoringIsObservationOnlyForTheMemoryHierarchy) {
  // The monitor charges cycles but must not change the program's memory
  // behaviour: identical miss counts with and without it.
  RunResult Plain = runExperiment(smallDb());
  RunConfig C = smallDb();
  C.Monitoring = true;
  C.Monitor.SamplingInterval = 5000;
  RunResult Monitored = runExperiment(C);
  EXPECT_EQ(Plain.Memory.L1Misses, Monitored.Memory.L1Misses);
  EXPECT_EQ(Plain.Memory.Accesses, Monitored.Memory.Accesses);
  EXPECT_GT(Monitored.TotalCycles, Plain.TotalCycles);
}

TEST(Harness, SeedFlowsIntoTheRun) {
  RunConfig C = smallDb();
  RunResult A = runExperiment(C);
  C.Params.Seed = C.Params.Seed + 1;
  RunResult B = runExperiment(C);
  EXPECT_NE(A.Memory.L1Misses, B.Memory.L1Misses);
}
