//===-- tests/obs/ObsConfigTest.cpp ---------------------------------------===//

#include "obs/Obs.h"

#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <unistd.h>
#include <gtest/gtest.h>
#include <sstream>
#include <vector>

using namespace hpmvm;

namespace {

/// argv builder: owns the strings, hands out mutable char*.
struct Argv {
  explicit Argv(std::vector<std::string> Args) : Strings(std::move(Args)) {
    for (std::string &S : Strings)
      Ptrs.push_back(S.data());
    Ptrs.push_back(nullptr);
  }
  int argc() const { return static_cast<int>(Strings.size()); }
  char **argv() { return Ptrs.data(); }

  std::vector<std::string> Strings;
  std::vector<char *> Ptrs;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

class ObsConfigTest : public ::testing::Test {
protected:
  void SetUp() override { Saved = processObsConfig(); }
  void TearDown() override {
    setProcessObsConfig(Saved);
    Log::setLevel(Saved.Level);
  }
  ObsConfig Saved;
};

} // namespace

TEST_F(ObsConfigTest, ParseStripsObsFlagsOnly) {
  Argv A({"bench", "--metrics-out", "m.json", "50", "--trace-out=t.json",
          "--log-level", "debug", "extra"});
  int Argc = A.argc();
  ASSERT_TRUE(parseObsFlags(Argc, A.argv()));
  ASSERT_EQ(Argc, 3);
  EXPECT_STREQ(A.argv()[1], "50");
  EXPECT_STREQ(A.argv()[2], "extra");
  EXPECT_EQ(processObsConfig().MetricsOutPath, "m.json");
  EXPECT_EQ(processObsConfig().TraceOutPath, "t.json");
  EXPECT_EQ(processObsConfig().Level, LogLevel::Debug);
  EXPECT_EQ(Log::level(), LogLevel::Debug);
}

TEST_F(ObsConfigTest, ParsesJournalAndSelfProfileFlags) {
  std::string Journal = ::testing::TempDir() + "obs_j.jsonl";
  Argv A({"bench", "--journal-out", Journal, "--self-profile", "keep"});
  int Argc = A.argc();
  ASSERT_TRUE(parseObsFlags(Argc, A.argv()));
  ASSERT_EQ(Argc, 2);
  EXPECT_STREQ(A.argv()[1], "keep");
  EXPECT_EQ(processObsConfig().JournalOutPath, Journal);
  EXPECT_TRUE(processObsConfig().SelfProfile);
}

TEST_F(ObsConfigTest, OutPathFlagCreatesMissingParentDirectory) {
  std::string Dir = ::testing::TempDir() + "obs_new_dir/nested";
  std::string Path = Dir + "/m.json";
  Argv A({"bench", "--metrics-out=" + Path});
  int Argc = A.argc();
  ASSERT_TRUE(parseObsFlags(Argc, A.argv()));
  // The directory was created eagerly at flag-parse time.
  FILE *F = fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  fclose(F);
  remove(Path.c_str());
  rmdir(Dir.c_str());
  rmdir((::testing::TempDir() + "obs_new_dir").c_str());
}

TEST_F(ObsConfigTest, OutPathFlagFailsOnUncreatableDirectory) {
  // /dev/null exists as a non-directory, so mkdir -p of any path under it
  // must fail -- and the flag parse must report it.
  Argv A({"bench", "--journal-out", "/dev/null/sub/j.jsonl"});
  int Argc = A.argc();
  EXPECT_FALSE(parseObsFlags(Argc, A.argv()));
}

TEST(EnsureParentDir, CreatesAndRejects) {
  std::string Dir = ::testing::TempDir() + "ensure_a/b/c";
  EXPECT_TRUE(ensureParentDir(Dir + "/file.json"));
  rmdir(Dir.c_str());
  rmdir((::testing::TempDir() + "ensure_a/b").c_str());
  rmdir((::testing::TempDir() + "ensure_a").c_str());
  EXPECT_TRUE(ensureParentDir("bare_filename_no_dir.json"));
  EXPECT_FALSE(ensureParentDir("/dev/null/x/file.json"));
}

TEST_F(ObsConfigTest, MissingValueFails) {
  Argv A({"bench", "--metrics-out"});
  int Argc = A.argc();
  EXPECT_FALSE(parseObsFlags(Argc, A.argv()));
}

TEST_F(ObsConfigTest, BadLogLevelFails) {
  Argv A({"bench", "--log-level", "loud"});
  int Argc = A.argc();
  EXPECT_FALSE(parseObsFlags(Argc, A.argv()));
}

TEST_F(ObsConfigTest, ResolveInheritsProcessDefaults) {
  ObsConfig Process;
  Process.MetricsOutPath = "proc.json";
  Process.Level = LogLevel::Warn;
  setProcessObsConfig(Process);

  ObsConfig PerRun;
  PerRun.TraceOutPath = "run.trace.json";
  ObsConfig R = resolveObsConfig(PerRun);
  EXPECT_EQ(R.MetricsOutPath, "proc.json"); // Inherited.
  EXPECT_EQ(R.TraceOutPath, "run.trace.json"); // Per-run wins.
  EXPECT_EQ(R.Level, LogLevel::Warn);

  ObsConfig Explicit;
  Explicit.MetricsOutPath = "own.json";
  EXPECT_EQ(resolveObsConfig(Explicit).MetricsOutPath, "own.json");
}

TEST_F(ObsConfigTest, ExportAllWritesBothFiles) {
  std::string MetricsPath = ::testing::TempDir() + "obs_metrics.json";
  std::string TracePath = ::testing::TempDir() + "obs_trace.json";
  ObsConfig C;
  C.MetricsOutPath = MetricsPath;
  C.TraceOutPath = TracePath;

  ObsContext Obs(C);
  Obs.metrics().counter("gc.collections").inc(3);
  Obs.trace().instant(3000, "collector.poll", "collector");
  ASSERT_TRUE(Obs.exportAll());

  bool Ok = false;
  auto Metrics = json::parse(slurp(MetricsPath), Ok);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Metrics->get("counters")->get("gc.collections")->Num, 3.0);

  auto Trace = json::parse(slurp(TracePath), Ok);
  ASSERT_TRUE(Ok);
  ASSERT_EQ(Trace->get("traceEvents")->Arr.size(), 1u);
  EXPECT_EQ(Trace->get("traceEvents")->Arr[0]->get("name")->Str,
            "collector.poll");

  remove(MetricsPath.c_str());
  remove(TracePath.c_str());
}

TEST_F(ObsConfigTest, ExportAllWritesJournalJsonl) {
  std::string JournalPath = ::testing::TempDir() + "obs_journal.jsonl";
  ObsConfig C;
  C.JournalOutPath = JournalPath;
  ObsContext Obs(C);
  Obs.journal().append({.Ts = 3000,
                        .Kind = DecisionKind::PhaseChange,
                        .Consumer = "phase",
                        .Action = "detect",
                        .Value = 2});
  ASSERT_TRUE(Obs.exportAll());

  std::string Text = slurp(JournalPath);
  bool Ok = false;
  auto Line = json::parse(Text.substr(0, Text.find('\n')), Ok);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Line->str("kind"), "PhaseChange");
  EXPECT_EQ(Line->str("consumer"), "phase");
  EXPECT_EQ(Line->num("ts"), 3000.0);
  remove(JournalPath.c_str());
}

TEST_F(ObsConfigTest, ExportToUnwritablePathFails) {
  ObsConfig C;
  C.MetricsOutPath = "/nonexistent-dir/metrics.json";
  ObsContext Obs(C);
  EXPECT_FALSE(Obs.exportAll());
}

TEST(LogLevels, ParseAndThreshold) {
  LogLevel L = LogLevel::Info;
  EXPECT_TRUE(parseLogLevel("error", L));
  EXPECT_EQ(L, LogLevel::Error);
  EXPECT_TRUE(parseLogLevel("off", L));
  EXPECT_EQ(L, LogLevel::Off);
  EXPECT_FALSE(parseLogLevel("shout", L));

  LogLevel Old = Log::level();
  Log::setLevel(LogLevel::Warn);
  EXPECT_FALSE(Log::enabled(LogLevel::Info));
  EXPECT_TRUE(Log::enabled(LogLevel::Warn));
  EXPECT_TRUE(Log::enabled(LogLevel::Error));
  Log::setLevel(Old);
}
