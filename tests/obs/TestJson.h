//===-- tests/obs/TestJson.h - Minimal JSON parser for tests ---*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny recursive-descent JSON parser, just enough to round-trip the
/// telemetry exporters' output in tests (objects, arrays, strings with
/// basic escapes, numbers, booleans, null). Not a general-purpose parser.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_TESTS_OBS_TESTJSON_H
#define HPMVM_TESTS_OBS_TESTJSON_H

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hpmvm::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<ValuePtr> Arr;
  std::map<std::string, ValuePtr> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member or null when absent/not an object.
  ValuePtr get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : It->second;
  }
};

class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  /// \returns the parsed document, or null on any syntax error. \p Ok is
  /// false when the text failed to parse or has trailing garbage.
  ValuePtr parse(bool &Ok) {
    Pos = 0;
    Failed = false;
    ValuePtr V = value();
    skipWs();
    Ok = !Failed && V && Pos == S.size();
    return Ok ? V : nullptr;
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  ValuePtr fail() {
    Failed = true;
    return nullptr;
  }

  ValuePtr value() {
    skipWs();
    if (Pos >= S.size())
      return fail();
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't' || C == 'f')
      return boolean();
    if (C == 'n')
      return null();
    return number();
  }

  ValuePtr object() {
    if (!eat('{'))
      return fail();
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::Object;
    skipWs();
    if (eat('}'))
      return V;
    while (true) {
      ValuePtr Key = string();
      if (!Key || !eat(':'))
        return fail();
      ValuePtr Member = value();
      if (!Member)
        return fail();
      V->Obj[Key->Str] = Member;
      if (eat(','))
        continue;
      if (eat('}'))
        return V;
      return fail();
    }
  }

  ValuePtr array() {
    if (!eat('['))
      return fail();
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::Array;
    skipWs();
    if (eat(']'))
      return V;
    while (true) {
      ValuePtr Elem = value();
      if (!Elem)
        return fail();
      V->Arr.push_back(Elem);
      if (eat(','))
        continue;
      if (eat(']'))
        return V;
      return fail();
    }
  }

  ValuePtr string() {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return fail();
    ++Pos;
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::String;
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C == '\\') {
        if (Pos >= S.size())
          return fail();
        char E = S[Pos++];
        switch (E) {
        case 'n': V->Str += '\n'; break;
        case 't': V->Str += '\t'; break;
        case 'r': V->Str += '\r'; break;
        case '"': V->Str += '"'; break;
        case '\\': V->Str += '\\'; break;
        case '/': V->Str += '/'; break;
        case 'u': // Keep the escape verbatim; tests don't need decoding.
          V->Str += "\\u";
          break;
        default:
          return fail();
        }
      } else {
        V->Str += C;
      }
    }
    if (Pos >= S.size())
      return fail();
    ++Pos; // Closing quote.
    return V;
  }

  ValuePtr boolean() {
    if (S.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      auto V = std::make_shared<Value>();
      V->K = Value::Kind::Bool;
      V->B = true;
      return V;
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      auto V = std::make_shared<Value>();
      V->K = Value::Kind::Bool;
      return V;
    }
    return fail();
  }

  ValuePtr null() {
    if (S.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      auto V = std::make_shared<Value>();
      return V;
    }
    return fail();
  }

  ValuePtr number() {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    bool Digits = false;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '-' || S[Pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(S[Pos])))
        Digits = true;
      ++Pos;
    }
    if (!Digits)
      return fail();
    auto V = std::make_shared<Value>();
    V->K = Value::Kind::Number;
    V->Num = std::strtod(S.substr(Start, Pos - Start).c_str(), nullptr);
    return V;
  }

  const std::string &S;
  size_t Pos = 0;
  bool Failed = false;
};

/// Convenience: parse or return null.
inline ValuePtr parse(const std::string &Text, bool &Ok) {
  Parser P(Text);
  return P.parse(Ok);
}

} // namespace hpmvm::testjson

#endif // HPMVM_TESTS_OBS_TESTJSON_H
