//===-- tests/obs/SelfProfilerTest.cpp ------------------------------------===//

#include "obs/SelfProfiler.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

TEST(SelfProfilerTest, DisabledByDefault) {
  SelfProfiler P;
  EXPECT_FALSE(P.enabled());
  EXPECT_FALSE(P.beginBatch());
  EXPECT_FALSE(P.timingBatch());
  // Recording against the sinks must be harmless even when disabled.
  P.recordStage(PipelineStage::Drain, 100);
  EXPECT_EQ(P.totalTimedNs(), 100u);
}

TEST(SelfProfilerTest, DisabledRegistersNoMetrics) {
  MetricsRegistry M;
  SelfProfiler P;
  (void)P;
  EXPECT_TRUE(M.snapshot().Histograms.empty());
}

TEST(SelfProfilerTest, EnableRegistersStageHistograms) {
  MetricsRegistry M;
  SelfProfiler P;
  P.enable(M, 1);
  EXPECT_TRUE(P.enabled());
  EXPECT_EQ(P.sampleEvery(), 1u);

  P.recordStage(PipelineStage::Drain, 10);
  P.recordStage(PipelineStage::Resolve, 20);
  P.recordStage(PipelineStage::Attribute, 30);
  P.recordStage(PipelineStage::Dispatch, 40);
  EXPECT_EQ(P.totalTimedNs(), 100u);

  MetricsSnapshot S = M.snapshot();
  ASSERT_EQ(S.Histograms.size(), 4u);
  bool SawDrain = false;
  for (const MetricsSnapshot::HistogramData &H : S.Histograms) {
    if (H.Name == "pipeline.stage.drain_ns") {
      SawDrain = true;
      EXPECT_EQ(H.Count, 1u);
      EXPECT_EQ(H.Sum, 10u);
    }
    EXPECT_EQ(H.Name.rfind("pipeline.stage.", 0), 0u);
  }
  EXPECT_TRUE(SawDrain);
}

TEST(SelfProfilerTest, EveryFirstBatchTimedWhenSamplingAll) {
  MetricsRegistry M;
  SelfProfiler P;
  P.enable(M, 1);
  for (int I = 0; I != 5; ++I) {
    EXPECT_TRUE(P.beginBatch());
    EXPECT_TRUE(P.timingBatch());
  }
}

TEST(SelfProfilerTest, SampleEverySkipsBatches) {
  MetricsRegistry M;
  SelfProfiler P;
  P.enable(M, 4);
  int Timed = 0;
  for (int I = 0; I != 12; ++I)
    if (P.beginBatch())
      ++Timed;
  EXPECT_EQ(Timed, 3); // Batches 0, 4 and 8.
}

TEST(SelfProfilerTest, TimingDecisionIsStickyUntilNextBatch) {
  MetricsRegistry M;
  SelfProfiler P;
  P.enable(M, 2);
  EXPECT_TRUE(P.beginBatch()); // Batch 0: timed.
  EXPECT_TRUE(P.timingBatch());
  EXPECT_TRUE(P.timingBatch()); // Still the same batch.
  EXPECT_FALSE(P.beginBatch()); // Batch 1: not timed.
  EXPECT_FALSE(P.timingBatch());
}

TEST(SelfProfilerTest, NowNsIsMonotonic) {
  uint64_t A = SelfProfiler::nowNs();
  uint64_t B = SelfProfiler::nowNs();
  EXPECT_GE(B, A);
}

} // namespace
