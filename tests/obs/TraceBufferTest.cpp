//===-- tests/obs/TraceBufferTest.cpp -------------------------------------===//

#include "obs/TraceBuffer.h"

#include "support/VirtualClock.h"
#include "support/Json.h"

#include <cstdio>
#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

std::string writeToString(const TraceBuffer &B) {
  char *Buf = nullptr;
  size_t Len = 0;
  FILE *Out = open_memstream(&Buf, &Len);
  ChromeTraceWriter::write(B, Out);
  fclose(Out);
  std::string S(Buf, Len);
  free(Buf);
  return S;
}

} // namespace

TEST(TraceBuffer, RecordsInOrder) {
  TraceBuffer B(8);
  B.instant(100, "a", "cat");
  B.complete(200, 50, "b", "cat");
  B.instant(300, "c", "cat");
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B.recorded(), 3u);
  EXPECT_EQ(B.dropped(), 0u);
  EXPECT_EQ(B.event(0).Ts, 100u);
  EXPECT_EQ(B.event(1).Ts, 200u);
  EXPECT_EQ(B.event(1).Dur, 50u);
  EXPECT_EQ(B.event(2).Ts, 300u);
  EXPECT_STREQ(B.event(1).Name, "b");
}

TEST(TraceBuffer, WraparoundKeepsNewestEvents) {
  TraceBuffer B(4);
  for (uint64_t I = 0; I != 10; ++I)
    B.instant(I * 100, "e", "cat", "i", I);
  EXPECT_EQ(B.size(), 4u);
  EXPECT_EQ(B.recorded(), 10u);
  EXPECT_EQ(B.dropped(), 6u);
  // Oldest retained is event 6 (0-5 were overwritten), chronological order.
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(B.event(I).Arg, 6 + I);
    EXPECT_EQ(B.event(I).Ts, (6 + I) * 100);
  }
}

TEST(TraceBuffer, ClearResetsEverything) {
  TraceBuffer B(4);
  for (int I = 0; I != 6; ++I)
    B.instant(I, "e", "c");
  B.clear();
  EXPECT_EQ(B.size(), 0u);
  EXPECT_EQ(B.recorded(), 0u);
  EXPECT_EQ(B.dropped(), 0u);
  B.instant(7, "f", "c");
  ASSERT_EQ(B.size(), 1u);
  EXPECT_EQ(B.event(0).Ts, 7u);
}

TEST(ChromeTraceWriter, EmitsValidChromeTraceJson) {
  TraceBuffer B(16);
  // 3 GHz virtual clock: 3000 cycles = 1 us.
  B.complete(3000, 6000, "gc.minor", "gc", "bytes_promoted", 4096);
  B.instant(15000, "collector.poll", "collector", "samples", 12);
  B.counterSample(30000, "heap.live", "gc", "bytes", 1u << 20);

  bool Ok = false;
  auto Doc = json::parse(writeToString(B), Ok);
  ASSERT_TRUE(Ok) << "writer must produce parseable JSON";

  auto Events = Doc->get("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->Arr.size(), 3u);

  auto &Gc = Events->Arr[0];
  EXPECT_EQ(Gc->get("name")->Str, "gc.minor");
  EXPECT_EQ(Gc->get("cat")->Str, "gc");
  EXPECT_EQ(Gc->get("ph")->Str, "X");
  EXPECT_EQ(Gc->get("ts")->Num, 1.0);  // 3000 cycles -> 1 us.
  EXPECT_EQ(Gc->get("dur")->Num, 2.0); // 6000 cycles -> 2 us.
  EXPECT_EQ(Gc->get("args")->get("bytes_promoted")->Num, 4096.0);

  auto &Poll = Events->Arr[1];
  EXPECT_EQ(Poll->get("ph")->Str, "i");
  EXPECT_EQ(Poll->get("s")->Str, "g");
  EXPECT_EQ(Poll->get("ts")->Num, 5.0);

  auto &Sample = Events->Arr[2];
  EXPECT_EQ(Sample->get("ph")->Str, "C");

  EXPECT_EQ(Doc->get("displayTimeUnit")->Str, "ms");
  auto Other = Doc->get("otherData");
  ASSERT_TRUE(Other && Other->isObject());
  EXPECT_EQ(Other->get("clock_hz")->Num,
            static_cast<double>(VirtualClock::kHz));
  EXPECT_EQ(Other->get("events_recorded")->Num, 3.0);
  EXPECT_EQ(Other->get("events_dropped")->Num, 0.0);
}

TEST(ChromeTraceWriter, EmptyBufferIsValidJson) {
  TraceBuffer B(4);
  bool Ok = false;
  auto Doc = json::parse(writeToString(B), Ok);
  ASSERT_TRUE(Ok);
  EXPECT_TRUE(Doc->get("traceEvents")->Arr.empty());
}

TEST(ChromeTraceWriter, EscapesSpecialCharactersInStrings) {
  TraceBuffer B(4);
  // Event strings must be literals that outlive the buffer; these exercise
  // every escape class the writer handles: quote, backslash, control char.
  B.instant(3000, "quote\"name", "back\\slash", "new\nline", 1);
  std::string Json = writeToString(B);
  bool Ok = false;
  auto Doc = json::parse(Json, Ok);
  ASSERT_TRUE(Ok) << Json;
  auto &E = Doc->get("traceEvents")->Arr[0];
  EXPECT_EQ(E->get("name")->Str, "quote\"name");
  EXPECT_EQ(E->get("cat")->Str, "back\\slash");
  // Raw specials must not leak into the serialized bytes.
  EXPECT_EQ(Json.find("quote\"name"), std::string::npos);
  EXPECT_EQ(Json.find('\n' + std::string("line")), std::string::npos);
}

TEST(ChromeTraceWriter, WrappedBufferRoundTrips) {
  TraceBuffer B(8);
  for (uint64_t I = 0; I != 100; ++I)
    B.instant(I * 3000, "tick", "t", "i", I);
  bool Ok = false;
  auto Doc = json::parse(writeToString(B), Ok);
  ASSERT_TRUE(Ok);
  auto Events = Doc->get("traceEvents");
  ASSERT_EQ(Events->Arr.size(), 8u);
  EXPECT_EQ(Events->Arr[0]->get("args")->get("i")->Num, 92.0);
  EXPECT_EQ(Doc->get("otherData")->get("events_dropped")->Num, 92.0);
}
