//===-- tests/obs/DecisionJournalTest.cpp ---------------------------------===//

#include "obs/DecisionJournal.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hpmvm;

namespace {

TEST(DecisionJournalTest, StartsEmpty) {
  DecisionJournal J;
  EXPECT_EQ(J.size(), 0u);
  EXPECT_EQ(J.recorded(), 0u);
  EXPECT_EQ(J.dropped(), 0u);
  EXPECT_EQ(J.capacity(), DecisionJournal::kDefaultCapacity);
  EXPECT_TRUE(J.toJsonl().empty());
}

TEST(DecisionJournalTest, AppendPreservesOrderAndFields) {
  DecisionJournal J;
  J.append({.Ts = 100,
            .Kind = DecisionKind::PrefetchInject,
            .Consumer = "prefetch",
            .Action = "rewrite_method",
            .Outcome = "applied",
            .Method = 7,
            .Rate = 42.5,
            .Value = 3});
  J.append({.Ts = 200,
            .Kind = DecisionKind::Revert,
            .Consumer = "prefetch",
            .Action = "assessment",
            .Outcome = "regression",
            .Rate = 9.0,
            .Baseline = 4.0,
            .Value = 27});

  std::vector<DecisionRecord> Snap = J.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap[0].Ts, 100u);
  EXPECT_EQ(Snap[0].Kind, DecisionKind::PrefetchInject);
  EXPECT_STREQ(Snap[0].Consumer, "prefetch");
  EXPECT_EQ(Snap[0].Method, 7u);
  EXPECT_EQ(Snap[0].Field, kInvalidId);
  EXPECT_EQ(Snap[1].Kind, DecisionKind::Revert);
  EXPECT_DOUBLE_EQ(Snap[1].Baseline, 4.0);
}

TEST(DecisionJournalTest, KindNamesAreStable) {
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::SamplingPolicy),
               "SamplingPolicy");
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::Coalloc), "Coalloc");
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::PrefetchInject),
               "PrefetchInject");
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::HotRecompile),
               "HotRecompile");
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::PhaseChange),
               "PhaseChange");
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::Assess), "Assess");
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::Revert), "Revert");
  EXPECT_STREQ(DecisionJournal::kindName(DecisionKind::Accept), "Accept");
}

TEST(DecisionJournalTest, CapacityKeepsFirstAndCountsDrops) {
  DecisionJournal J(3);
  for (uint64_t I = 0; I != 5; ++I)
    J.append({.Ts = I, .Consumer = "c", .Action = "a", .Value = I});
  EXPECT_EQ(J.size(), 3u);
  EXPECT_EQ(J.recorded(), 5u);
  EXPECT_EQ(J.dropped(), 2u);
  // Keep-first: the earliest decisions survive.
  std::vector<DecisionRecord> Snap = J.snapshot();
  EXPECT_EQ(Snap[0].Value, 0u);
  EXPECT_EQ(Snap[2].Value, 2u);
}

TEST(DecisionJournalTest, ZeroCapacityClampsToOne) {
  DecisionJournal J(0);
  EXPECT_EQ(J.capacity(), 1u);
  J.append({.Consumer = "c", .Action = "a"});
  J.append({.Consumer = "c", .Action = "a"});
  EXPECT_EQ(J.size(), 1u);
  EXPECT_EQ(J.dropped(), 1u);
}

TEST(DecisionJournalTest, JsonlOmitsAbsentFields) {
  DecisionJournal J;
  J.append({.Ts = 5, .Kind = DecisionKind::Assess, .Consumer = "ctl",
            .Action = "policy_change", .Value = 9});
  std::string Line = J.toJsonl();
  EXPECT_EQ(Line, "{\"ts\": 5, \"kind\": \"Assess\", \"consumer\": \"ctl\", "
                  "\"action\": \"policy_change\", \"value\": 9}\n");
}

TEST(DecisionJournalTest, JsonlIncludesPresentFields) {
  DecisionJournal J;
  J.append({.Ts = 10,
            .Kind = DecisionKind::Coalloc,
            .Consumer = "coalloc",
            .Action = "hint",
            .Outcome = "co_allocate",
            .Field = 4,
            .Rate = 2.5,
            .Value = 1});
  EXPECT_EQ(J.toJsonl(),
            "{\"ts\": 10, \"kind\": \"Coalloc\", \"consumer\": \"coalloc\", "
            "\"action\": \"hint\", \"field\": 4, \"rate\": 2.5, "
            "\"value\": 1, \"outcome\": \"co_allocate\"}\n");
}

TEST(DecisionJournalTest, JsonlEscapesStrings) {
  DecisionJournal J;
  J.append({.Consumer = "a\"b", .Action = "c\\d"});
  std::string Line = J.toJsonl();
  EXPECT_NE(Line.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(Line.find("\"c\\\\d\""), std::string::npos);
}

TEST(DecisionJournalTest, EveryLineParsesAsJson) {
  DecisionJournal J;
  J.append({.Ts = 1, .Kind = DecisionKind::SamplingPolicy, .Consumer = "hpm",
            .Action = "interval_retarget", .Rate = 180.0, .Baseline = 200.0,
            .Value = 50000});
  J.append({.Ts = 2, .Kind = DecisionKind::HotRecompile,
            .Consumer = "frequency", .Action = "note_hot_method",
            .Outcome = "reported_to_aos", .Method = 3, .Rate = 17.0,
            .Value = 17});
  std::string Text = J.toJsonl();
  size_t Pos = 0;
  int Lines = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    bool Ok = false;
    json::ValuePtr V = json::parse(Text.substr(Pos, End - Pos), Ok);
    ASSERT_TRUE(Ok);
    ASSERT_TRUE(V->isObject());
    EXPECT_FALSE(V->str("kind").empty());
    EXPECT_FALSE(V->str("consumer").empty());
    Pos = End + 1;
    ++Lines;
  }
  EXPECT_EQ(Lines, 2);
}

TEST(DecisionJournalTest, ClearResetsEverything) {
  DecisionJournal J(2);
  for (int I = 0; I != 4; ++I)
    J.append({.Consumer = "c", .Action = "a"});
  J.clear();
  EXPECT_EQ(J.size(), 0u);
  EXPECT_EQ(J.recorded(), 0u);
  EXPECT_EQ(J.dropped(), 0u);
}

TEST(DecisionJournalTest, ConcurrentAppendsAllLand) {
  DecisionJournal J;
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != kThreads; ++T)
    Threads.emplace_back([&J, T] {
      for (int I = 0; I != kPerThread; ++I)
        J.append({.Ts = static_cast<Cycles>(T), .Consumer = "t",
                  .Action = "a", .Value = static_cast<uint64_t>(I)});
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(J.recorded(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(J.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(DecisionJournalTest, WriteFileRoundTrips) {
  DecisionJournal J;
  J.append({.Ts = 42, .Kind = DecisionKind::Accept, .Consumer = "placement",
            .Action = "assessment", .Outcome = "no_regression", .Rate = 1.0,
            .Baseline = 2.0, .Value = 12});
  std::string Path =
      testing::TempDir() + "/decision_journal_roundtrip.jsonl";
  ASSERT_TRUE(J.writeFile(Path));
  FILE *F = fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  char Buf[512] = {};
  size_t N = fread(Buf, 1, sizeof(Buf) - 1, F);
  fclose(F);
  remove(Path.c_str());
  EXPECT_EQ(std::string(Buf, N), J.toJsonl());
}

TEST(DecisionJournalTest, WriteFileFailsOnBadPath) {
  DecisionJournal J;
  EXPECT_FALSE(J.writeFile("/nonexistent-dir-hpmvm/journal.jsonl"));
}

} // namespace
