//===-- tests/obs/MetricsRegistryTest.cpp ---------------------------------===//

#include "obs/Metrics.h"

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(Counter, SinkIsSharedAndDiscards) {
  uint64_t Before = Counter::sink().value();
  Counter::sink().inc(7);
  EXPECT_EQ(Counter::sink().value(), Before + 7);
  EXPECT_EQ(&Counter::sink(), &Counter::sink());
}

TEST(Histogram, Log2Buckets) {
  Histogram H;
  H.record(0); // bit_width(0) == 0 -> bucket 0.
  H.record(1); // bucket 1: [1, 2)
  H.record(2); // bucket 2: [2, 4)
  H.record(3);
  H.record(4); // bucket 3: [4, 8)
  H.record(7);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 2u);
  EXPECT_EQ(H.bucket(3), 2u);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 17u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 7u);
}

TEST(Histogram, EmptyHistogramHasZeroMinMax) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
}

TEST(Histogram, LargeValuesLandInTopBuckets) {
  Histogram H;
  H.record(~0ull); // bit_width = 64 -> bucket 64 (the last one).
  EXPECT_EQ(H.bucket(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(H.max(), ~0ull);
}

TEST(Histogram, PercentilesAreExactForUniformValues) {
  MetricsRegistry R;
  Histogram &H = R.histogram("h");
  for (int I = 0; I != 100; ++I)
    H.record(10); // One bucket; upper edge 15 clamps to Max = 10.
  // Keep the snapshot alive: histogram() points into the snapshot object.
  MetricsSnapshot S = R.snapshot();
  const MetricsSnapshot::HistogramData *D = S.histogram("h");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->P50, 10u);
  EXPECT_EQ(D->P95, 10u);
  EXPECT_EQ(D->P99, 10u);
}

TEST(Histogram, PercentilesSeparateBimodalPopulations) {
  MetricsRegistry R;
  Histogram &H = R.histogram("h");
  for (int I = 0; I != 50; ++I)
    H.record(1);
  for (int I = 0; I != 50; ++I)
    H.record(1000);
  MetricsSnapshot S = R.snapshot();
  const MetricsSnapshot::HistogramData *D = S.histogram("h");
  ASSERT_NE(D, nullptr);
  // Nearest-rank: rank 50 of 100 still lands in the low bucket.
  EXPECT_EQ(D->P50, 1u);
  // High percentiles land in the 1000s bucket, whose upper edge (1023)
  // clamps to the observed Max.
  EXPECT_EQ(D->P95, 1000u);
  EXPECT_EQ(D->P99, 1000u);
}

TEST(Histogram, PercentileOfSingleSampleIsThatSample) {
  MetricsSnapshot::HistogramData D;
  D.Count = 1;
  D.Min = 7;
  D.Max = 7;
  D.Buckets = {{3, 1}}; // bit_width(7) == 3.
  D.computePercentiles();
  EXPECT_EQ(D.P50, 7u);
  EXPECT_EQ(D.P99, 7u);
  EXPECT_EQ(D.percentile(0.0), 7u);
  EXPECT_EQ(D.percentile(1.0), 7u);
}

TEST(Histogram, PercentileOfEmptyHistogramIsZero) {
  MetricsSnapshot::HistogramData D;
  D.computePercentiles();
  EXPECT_EQ(D.P50, 0u);
  EXPECT_EQ(D.P95, 0u);
  EXPECT_EQ(D.P99, 0u);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry R;
  Counter &A = R.counter("gc.collections");
  Counter &B = R.counter("gc.collections");
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(R.numCounters(), 1u);
  A.inc();
  B.inc();
  EXPECT_EQ(R.counter("gc.collections").value(), 2u);
}

TEST(MetricsRegistry, PointersSurviveFurtherRegistration) {
  MetricsRegistry R;
  Counter &First = R.counter("first");
  // Force rehash/growth of the backing containers.
  for (int I = 0; I != 200; ++I)
    R.counter("c" + std::to_string(I)).inc();
  First.inc(5);
  EXPECT_EQ(R.counter("first").value(), 5u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry R;
  R.counter("zeta").inc(1);
  R.counter("alpha").inc(2);
  R.gauge("mid").set(3);
  R.histogram("hist").record(9);

  MetricsSnapshot S1 = R.snapshot();
  MetricsSnapshot S2 = R.snapshot();
  ASSERT_EQ(S1.Counters.size(), 2u);
  EXPECT_EQ(S1.Counters[0].first, "alpha");
  EXPECT_EQ(S1.Counters[1].first, "zeta");
  EXPECT_EQ(S1.toJson(), S2.toJson());
}

TEST(MetricsSnapshot, AbsentMetricsReadAsZero) {
  MetricsRegistry R;
  R.counter("present").inc(4);
  MetricsSnapshot S = R.snapshot();
  EXPECT_EQ(S.counter("present"), 4u);
  EXPECT_EQ(S.counter("hpm.samples_collected"), 0u);
  EXPECT_EQ(S.gauge("never.set"), 0u);
  EXPECT_EQ(S.histogram("never.recorded"), nullptr);
}

TEST(MetricsSnapshot, JsonRoundTrips) {
  MetricsRegistry R;
  R.counter("hpm.samples_collected").inc(123);
  R.gauge("hpm.sampling_interval").set(100000);
  Histogram &H = R.histogram("collector.batch_samples");
  H.record(0);
  H.record(5);
  H.record(5);

  bool Ok = false;
  auto Doc = json::parse(R.snapshot().toJson(), Ok);
  ASSERT_TRUE(Ok);
  ASSERT_TRUE(Doc->isObject());

  auto Counters = Doc->get("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  auto SamplesVal = Counters->get("hpm.samples_collected");
  ASSERT_TRUE(SamplesVal && SamplesVal->isNumber());
  EXPECT_EQ(SamplesVal->Num, 123.0);

  auto Gauges = Doc->get("gauges");
  ASSERT_TRUE(Gauges && Gauges->isObject());
  EXPECT_EQ(Gauges->get("hpm.sampling_interval")->Num, 100000.0);

  auto Hists = Doc->get("histograms");
  ASSERT_TRUE(Hists && Hists->isObject());
  auto Batch = Hists->get("collector.batch_samples");
  ASSERT_TRUE(Batch && Batch->isObject());
  EXPECT_EQ(Batch->get("count")->Num, 3.0);
  EXPECT_EQ(Batch->get("sum")->Num, 10.0);
  EXPECT_EQ(Batch->get("min")->Num, 0.0);
  EXPECT_EQ(Batch->get("max")->Num, 5.0);
  // Samples {0, 5, 5}: rank 2 of 3 falls in the fives' bucket.
  EXPECT_EQ(Batch->get("p50")->Num, 5.0);
  EXPECT_EQ(Batch->get("p95")->Num, 5.0);
  EXPECT_EQ(Batch->get("p99")->Num, 5.0);
  auto Buckets = Batch->get("log2_buckets");
  ASSERT_TRUE(Buckets && Buckets->isArray());
  // Non-empty buckets only: bucket 0 (one zero), bucket 3 (two fives).
  ASSERT_EQ(Buckets->Arr.size(), 2u);
  EXPECT_EQ(Buckets->Arr[0]->Arr[0]->Num, 0.0);
  EXPECT_EQ(Buckets->Arr[0]->Arr[1]->Num, 1.0);
  EXPECT_EQ(Buckets->Arr[1]->Arr[0]->Num, 3.0);
  EXPECT_EQ(Buckets->Arr[1]->Arr[1]->Num, 2.0);
}

TEST(MetricsSnapshot, EmptyRegistryIsValidJson) {
  MetricsRegistry R;
  bool Ok = false;
  auto Doc = json::parse(R.snapshot().toJson(), Ok);
  ASSERT_TRUE(Ok);
  EXPECT_TRUE(Doc->get("counters")->Obj.empty());
  EXPECT_TRUE(Doc->get("gauges")->Obj.empty());
  EXPECT_TRUE(Doc->get("histograms")->Obj.empty());
}
