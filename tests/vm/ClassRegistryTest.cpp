//===-- tests/vm/ClassRegistryTest.cpp ------------------------------------===//

#include "vm/ClassRegistry.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(ClassRegistry, FieldOffsetsInDeclarationOrder) {
  ClassRegistry R;
  ClassId C = R.defineClass("Pair", {{"first", true}, {"count", false}});
  FieldId F0 = R.fieldId(C, "first");
  FieldId F1 = R.fieldId(C, "count");
  EXPECT_EQ(R.field(F0).Offset, objheader::kHeaderBytes);
  EXPECT_EQ(R.field(F1).Offset, objheader::kHeaderBytes + 4);
  EXPECT_TRUE(R.field(F0).IsRef);
  EXPECT_FALSE(R.field(F1).IsRef);
  EXPECT_STREQ(R.field(F0).Name, "Pair::first");
  EXPECT_EQ(R.field(F0).Owner, C);
}

TEST(ClassRegistry, HeapDescCarriesRefOffsets) {
  ClassRegistry R;
  ClassId C = R.defineClass("T", {{"a", false}, {"b", true}, {"c", true}});
  const HeapClassDesc &D = R.heapClasses().desc(C);
  ASSERT_EQ(D.RefOffsets.size(), 2u);
  EXPECT_EQ(D.RefOffsets[0], objheader::kHeaderBytes + 4);
  EXPECT_EQ(D.RefOffsets[1], objheader::kHeaderBytes + 8);
  EXPECT_EQ(D.InstanceBytes, 32u); // 16 + 12 -> 32.
}

TEST(ClassRegistry, ArrayClasses) {
  ClassRegistry R;
  ClassId A = R.defineArrayClass("int[]", ElemKind::I32);
  EXPECT_TRUE(R.heapClasses().desc(A).isArray());
  EXPECT_EQ(R.heapClasses().desc(A).ArrayElem, ElemKind::I32);
  EXPECT_TRUE(R.fieldsOf(A).empty());
}

TEST(ClassRegistry, GlobalFieldIdsAreUniqueAcrossClasses) {
  ClassRegistry R;
  ClassId C1 = R.defineClass("A", {{"x", false}});
  ClassId C2 = R.defineClass("B", {{"x", false}});
  EXPECT_NE(R.fieldId(C1, "x"), R.fieldId(C2, "x"));
  EXPECT_EQ(R.numFields(), 2u);
}

TEST(ClassRegistry, FieldsOfListsOwnFieldsOnly) {
  ClassRegistry R;
  ClassId C1 = R.defineClass("A", {{"p", true}, {"q", false}});
  ClassId C2 = R.defineClass("B", {{"r", true}});
  EXPECT_EQ(R.fieldsOf(C1).size(), 2u);
  EXPECT_EQ(R.fieldsOf(C2).size(), 1u);
  EXPECT_STREQ(R.field(R.fieldsOf(C2)[0]).Name, "B::r");
}

TEST(ClassRegistry, ClassName) {
  ClassRegistry R;
  ClassId C = R.defineClass("MyClass", {});
  EXPECT_EQ(R.className(C), "MyClass");
}
