//===-- tests/vm/AosTest.cpp ----------------------------------------------===//

#include "TestSupport.h"

#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/OptCompiler.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

MethodId trivialMethod(TestVm &T, const char *Name) {
  BytecodeBuilder B(Name);
  B.returns(RetKind::Int);
  B.iconst(1).iret();
  return T.Vm.addMethod(B.build());
}

MethodId loopMethod(TestVm &T, const char *Name, int32_t Count) {
  BytecodeBuilder B(Name);
  uint32_t I = B.newLocal();
  B.returns(RetKind::Void);
  B.iconst(0).istore(I);
  Label Loop = B.label(), Done = B.label();
  B.bind(Loop).iload(I).iconst(Count).ifICmp(CondKind::Ge, Done);
  B.iinc(I, 1).jump(Loop);
  B.bind(Done).ret();
  return T.Vm.addMethod(B.build());
}

} // namespace

TEST(Aos, InvocationThresholdTriggersCompile) {
  TestVm T;
  AosConfig C;
  C.HotInvocationThreshold = 5;
  T.Vm.aos().setConfig(C);
  MethodId Id = trivialMethod(T, "hot");
  for (int I = 0; I != 4; ++I)
    T.call(Id);
  EXPECT_FALSE(T.Vm.method(Id).isOptCompiled());
  T.call(Id);
  EXPECT_TRUE(T.Vm.method(Id).isOptCompiled());
  EXPECT_EQ(T.Vm.stats().MethodsOptCompiled, 1u);
}

TEST(Aos, BackEdgeThresholdTriggersCompile) {
  TestVm T;
  AosConfig C;
  C.HotInvocationThreshold = 1000000;
  C.HotBackEdgeThreshold = 100;
  T.Vm.aos().setConfig(C);
  MethodId Id = loopMethod(T, "loopy", 500);
  T.call(Id); // 500 back-edges: compiled mid-run, effective next call.
  EXPECT_TRUE(T.Vm.method(Id).isOptCompiled());
  EXPECT_GT(T.Vm.method(Id).BackEdges, 100u);
}

TEST(Aos, CompileChargesCycles) {
  TestVm T;
  MethodId Id = trivialMethod(T, "m");
  Cycles Before = T.Vm.clock().now();
  T.Vm.aos().compileNow(T.Vm.method(Id));
  EXPECT_GT(T.Vm.clock().now(), Before);
  EXPECT_EQ(T.Vm.stats().CompileCycles, T.Vm.clock().now() - Before);
}

TEST(Aos, CompileNowIsIdempotent) {
  TestVm T;
  MethodId Id = trivialMethod(T, "m");
  T.Vm.aos().compileNow(T.Vm.method(Id));
  uint32_t OptIndex = T.Vm.method(Id).OptIndex;
  T.Vm.aos().compileNow(T.Vm.method(Id));
  EXPECT_EQ(T.Vm.method(Id).OptIndex, OptIndex);
  EXPECT_EQ(T.Vm.stats().MethodsOptCompiled, 1u);
}

TEST(Aos, PseudoAdaptivePlanCompilesExactlyAndFreezes) {
  TestVm T;
  MethodId A = trivialMethod(T, "a");
  MethodId Bm = trivialMethod(T, "b");
  MethodId Cm = trivialMethod(T, "c");
  T.Vm.aos().applyCompilationPlan({"a", "c"});
  EXPECT_TRUE(T.Vm.method(A).isOptCompiled());
  EXPECT_FALSE(T.Vm.method(Bm).isOptCompiled());
  EXPECT_TRUE(T.Vm.method(Cm).isOptCompiled());
  // Frozen: b never compiles no matter how hot.
  for (int I = 0; I != 200; ++I)
    T.call(Bm);
  EXPECT_FALSE(T.Vm.method(Bm).isOptCompiled());
}

TEST(Aos, TimerSamplingAttributesToRunningMethod) {
  TestVm T;
  AosConfig C;
  C.Enabled = false;
  C.TimerSampleMs = 0.001; // Sample every 3000 cycles of virtual time.
  T.Vm.aos().setConfig(C);
  MethodId Id = loopMethod(T, "spin", 100000);
  T.call(Id);
  EXPECT_GT(T.Vm.aos().timerSamples(), 10u);
  EXPECT_GT(T.Vm.aos().timerSamplesOf(Id), 10u);
}

TEST(Aos, RecompileMarksOldCodeStale) {
  TestVm T;
  MethodId Id = loopMethod(T, "m", 10);
  Method &M = T.Vm.method(Id);
  T.Vm.aos().compileNow(M);
  uint64_t StaleBefore = T.Vm.immortal().staleBytes();
  // Re-install a fresh body (models recompilation at a higher opt level):
  // the old code is abandoned in place and accounted as stale.
  MachineFunction NewF = OptCompiler::compile(M, T.Vm.classes(),
                                              T.Vm.methods(),
                                              T.Vm.globalKinds());
  T.Vm.installCompiledCode(M, std::move(NewF));
  EXPECT_GT(T.Vm.immortal().staleBytes(), StaleBefore);
}

TEST(Aos, HpmHotMethodReportCompilesWhenEnabled) {
  TestVm T;
  MethodId Id = trivialMethod(T, "hot");
  EXPECT_FALSE(T.Vm.method(Id).isOptCompiled());
  T.Vm.aos().noteHpmHotMethod(Id);
  EXPECT_EQ(T.Vm.aos().hpmHotReports(), 1u);
  EXPECT_TRUE(T.Vm.method(Id).isOptCompiled());
  // Idempotent: a second report must not recompile.
  uint32_t OptIndex = T.Vm.method(Id).OptIndex;
  T.Vm.aos().noteHpmHotMethod(Id);
  EXPECT_EQ(T.Vm.aos().hpmHotReports(), 2u);
  EXPECT_EQ(T.Vm.method(Id).OptIndex, OptIndex);
  EXPECT_EQ(T.Vm.stats().MethodsOptCompiled, 1u);
}

TEST(Aos, HpmHotMethodReportCountsButHoldsWhenDisabled) {
  // Pseudo-adaptive mode (the paper's evaluation config) freezes the
  // compilation plan; HPM hotness reports are still counted for
  // telemetry but must not compile anything.
  TestVm T;
  AosConfig C;
  C.Enabled = false;
  T.Vm.aos().setConfig(C);
  MethodId Id = trivialMethod(T, "hot");
  T.Vm.aos().noteHpmHotMethod(Id);
  EXPECT_EQ(T.Vm.aos().hpmHotReports(), 1u);
  EXPECT_FALSE(T.Vm.method(Id).isOptCompiled());
}
