//===-- tests/vm/BytecodeBuilderTest.cpp ----------------------------------===//

#include "vm/BytecodeBuilder.h"

#include "vm/ClassRegistry.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(BytecodeBuilder, ParamsAndLocals) {
  BytecodeBuilder B("m");
  uint32_t P0 = B.addParam(ValKind::Int);
  uint32_t P1 = B.addParam(ValKind::Ref);
  uint32_t L0 = B.newLocal();
  EXPECT_EQ(P0, 0u);
  EXPECT_EQ(P1, 1u);
  EXPECT_EQ(L0, 2u);
  B.ret();
  Method M = B.build();
  EXPECT_EQ(M.NumParams, 2u);
  EXPECT_EQ(M.NumLocals, 3u);
  EXPECT_EQ(M.ParamKinds[1], ValKind::Ref);
}

TEST(BytecodeBuilder, BackwardBranchPatching) {
  BytecodeBuilder B("m");
  B.returns(RetKind::Void);
  Label Top = B.label();
  B.bind(Top);          // pc 0
  B.iconst(1);          // pc 0 (first insn)
  B.popv();             // pc 1
  B.iconst(0).ifZ(CondKind::Ne, Top); // backward branch to insn 0.
  B.ret();
  Method M = B.build();
  EXPECT_EQ(M.Code[3].Opcode, Op::IfZ);
  EXPECT_EQ(M.Code[3].B, 0);
}

TEST(BytecodeBuilder, ForwardBranchPatching) {
  BytecodeBuilder B("m");
  B.returns(RetKind::Int);
  Label Skip = B.label();
  B.iconst(1).ifZ(CondKind::Ne, Skip); // insns 0,1
  B.iconst(99).iret();                 // insns 2,3
  B.bind(Skip).iconst(7).iret();       // insns 4,5
  Method M = B.build();
  EXPECT_EQ(M.Code[1].B, 4);
}

TEST(BytecodeBuilder, DocExampleVerifies) {
  // The header's doc-comment example must actually assemble and verify.
  BytecodeBuilder B("sum");
  uint32_t N = B.addParam(ValKind::Int);
  uint32_t Acc = B.newLocal(), I = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(0).istore(Acc).iconst(0).istore(I);
  Label Loop = B.label(), Done = B.label();
  B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
  B.iload(Acc).iload(I).iadd().istore(Acc).iinc(I, 1).jump(Loop);
  B.bind(Done).iload(Acc).iret();
  Method M = B.build();

  ClassRegistry Reg;
  std::vector<Method> None;
  EXPECT_EQ(verifyMethod(M, None, Reg, {}), "");
}

TEST(BytecodeBuilder, NextPcTracksEmission) {
  BytecodeBuilder B("m");
  EXPECT_EQ(B.nextPc(), 0u);
  B.iconst(1);
  B.popv();
  EXPECT_EQ(B.nextPc(), 2u);
}

//===----------------------------------------------------------------------===//
// Verifier negative tests: each malformed-bytecode class must be rejected
// with its specific diagnostic.
//===----------------------------------------------------------------------===//

namespace {

struct VerifierRig {
  ClassRegistry Classes;
  ClassId Box;
  FieldId FRef, FInt;
  ClassId IntArr;
  std::vector<Method> Methods;
  std::vector<ValKind> Globals{ValKind::Int, ValKind::Ref};

  VerifierRig() {
    Box = Classes.defineClass("Box", {{"r", true}, {"i", false}});
    FRef = Classes.fieldId(Box, "r");
    FInt = Classes.fieldId(Box, "i");
    IntArr = Classes.defineArrayClass("int[]", ElemKind::I32);
    Method Callee;
    Callee.Name = "callee";
    Callee.Id = 0;
    Callee.NumParams = 1;
    Callee.ParamKinds = {ValKind::Int};
    Callee.NumLocals = 1;
    Callee.Return = RetKind::Int;
    Callee.Code = {{Op::ILoad, 0, 0}, {Op::IRet, 0, 0}};
    Methods.push_back(std::move(Callee));
  }

  std::string check(std::vector<Insn> Code, uint32_t Locals = 4,
                    RetKind Ret = RetKind::Void,
                    std::vector<ValKind> Params = {}) {
    Method M;
    M.Name = "m";
    M.NumParams = static_cast<uint32_t>(Params.size());
    M.ParamKinds = std::move(Params);
    M.NumLocals = Locals;
    M.Return = Ret;
    M.Code = std::move(Code);
    return verifyMethod(M, Methods, Classes, Globals);
  }
};

TEST(Verifier, StackUnderflow) {
  VerifierRig R;
  EXPECT_NE(R.check({{Op::IAdd, 0, 0}, {Op::Ret, 0, 0}})
                .find("underflow"),
            std::string::npos);
}

TEST(Verifier, TypeMismatchIntWhereRefExpected) {
  VerifierRig R;
  std::string D = R.check({{Op::IConst, 1, 0},
                           {Op::GetField, (int32_t)R.FInt, 0},
                           {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("expected ref operand"), std::string::npos) << D;
}

TEST(Verifier, UninitializedLocalRead) {
  VerifierRig R;
  std::string D = R.check({{Op::ILoad, 2, 0}, {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("uninitialized local"), std::string::npos) << D;
}

TEST(Verifier, LocalTypeMismatch) {
  VerifierRig R;
  // astore into local then iload from it.
  std::string D = R.check({{Op::AConstNull, 0, 0},
                           {Op::AStore, 1, 0},
                           {Op::ILoad, 1, 0},
                           {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("local type mismatch"), std::string::npos) << D;
}

TEST(Verifier, LocalIndexOutOfRange) {
  VerifierRig R;
  std::string D =
      R.check({{Op::IConst, 1, 0}, {Op::IStore, 99, 0}, {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("local index out of range"), std::string::npos) << D;
}

TEST(Verifier, BranchOutOfRange) {
  VerifierRig R;
  std::string D = R.check({{Op::Goto, 0, 99}, {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("out of range"), std::string::npos) << D;
}

TEST(Verifier, StackShapeMismatchAtMerge) {
  VerifierRig R;
  // Path A pushes one int before the join; path B pushes none.
  std::string D = R.check({{Op::IConst, 1, 0},        // 0
                           {Op::IfZ, 0 /*Eq*/, 3},    // 1: pops, maybe ->3
                           {Op::IConst, 5, 0},        // 2: depth 1
                           {Op::Ret, 0, 0}});         // 3: depths {0,1}
  EXPECT_NE(D.find("stack shape mismatch"), std::string::npos) << D;
}

TEST(Verifier, FallOffTheEnd) {
  VerifierRig R;
  std::string D = R.check({{Op::IConst, 1, 0}, {Op::Pop, 0, 0}});
  EXPECT_NE(D.find("falls off the end"), std::string::npos) << D;
}

TEST(Verifier, WrongReturnKind) {
  VerifierRig R;
  std::string D = R.check({{Op::Ret, 0, 0}}, 4, RetKind::Int);
  EXPECT_NE(D.find("void return from a non-void"), std::string::npos)
      << D;
}

TEST(Verifier, UnknownClassAndField) {
  VerifierRig R;
  EXPECT_NE(R.check({{Op::New, 999, 0}, {Op::Ret, 0, 0}})
                .find("unknown class"),
            std::string::npos);
  std::string D = R.check({{Op::AConstNull, 0, 0},
                           {Op::GetField, 999, 0},
                           {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("unknown field"), std::string::npos) << D;
}

TEST(Verifier, NewOfArrayClassRejected) {
  VerifierRig R;
  std::string D =
      R.check({{Op::New, (int32_t)R.IntArr, 0}, {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("use NewArray"), std::string::npos) << D;
}

TEST(Verifier, CallArgumentKindChecked) {
  VerifierRig R;
  // callee takes an int; pass a ref.
  std::string D = R.check({{Op::AConstNull, 0, 0},
                           {Op::Call, 0, 0},
                           {Op::Pop, 0, 0},
                           {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("expected int operand for call argument"),
            std::string::npos)
      << D;
}

TEST(Verifier, GlobalKindChecked) {
  VerifierRig R;
  // Global 0 is an int; store a ref into it.
  std::string D = R.check({{Op::AConstNull, 0, 0},
                           {Op::GPut, 0, 0},
                           {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("expected int operand"), std::string::npos) << D;
}

TEST(Verifier, MergedLocalsConflictOnlyOnRead) {
  VerifierRig R;
  // A local holding int on one path, ref on the other is fine while
  // unread...
  std::string Ok = R.check({{Op::IConst, 1, 0},       // 0
                            {Op::IfZ, 0, 4},          // 1
                            {Op::IConst, 5, 0},       // 2
                            {Op::IStore, 1, 0},       // 3
                            {Op::Ret, 0, 0}},         // 4
                           4, RetKind::Void);
  EXPECT_EQ(Ok, "");
  // ...but reading it after the merge is rejected.
  std::string D = R.check({{Op::IConst, 1, 0},        // 0
                           {Op::IfZ, 0, 5},           // 1: -> 5
                           {Op::IConst, 5, 0},        // 2
                           {Op::IStore, 1, 0},        // 3
                           {Op::Goto, 0, 7},          // 4: -> 7
                           {Op::AConstNull, 0, 0},    // 5
                           {Op::AStore, 1, 0},        // 6
                           {Op::ILoad, 1, 0},         // 7: conflict read
                           {Op::Ret, 0, 0}});
  EXPECT_NE(D.find("local type mismatch"), std::string::npos) << D;
}

} // namespace
