//===-- tests/vm/InterpreterTest.cpp --------------------------------------===//

#include "TestSupport.h"

#include "vm/BytecodeBuilder.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// Builds `int f(int a, int b) { return a <op> b; }`.
MethodId binOp(VirtualMachine &Vm, const char *Name,
               BytecodeBuilder &(*Emit)(BytecodeBuilder &)) {
  BytecodeBuilder B(Name);
  uint32_t A = B.addParam(ValKind::Int), Bp = B.addParam(ValKind::Int);
  B.returns(RetKind::Int);
  B.iload(A).iload(Bp);
  Emit(B);
  B.iret();
  return Vm.addMethod(B.build());
}

struct ArithCase {
  const char *Name;
  BytecodeBuilder &(*Emit)(BytecodeBuilder &);
  int32_t A, B, Expected;
};

class ArithTest : public testing::TestWithParam<ArithCase> {};

TEST_P(ArithTest, Evaluates) {
  TestVm T;
  const ArithCase &C = GetParam();
  MethodId M = binOp(T.Vm, C.Name, C.Emit);
  Value R = T.call(M, {Value::makeInt(C.A), Value::makeInt(C.B)});
  EXPECT_EQ(R.asInt(), C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ArithTest,
    testing::Values(
        ArithCase{"add", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.iadd();
                  }, 20, 22, 42},
        ArithCase{"sub", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.isub();
                  }, 10, 17, -7},
        ArithCase{"mul", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.imul();
                  }, -6, 7, -42},
        ArithCase{"div", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.idiv();
                  }, -43, 6, -7},
        ArithCase{"rem", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.irem();
                  }, 43, 6, 1},
        ArithCase{"and", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.iand();
                  }, 0b1100, 0b1010, 0b1000},
        ArithCase{"or", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.ior();
                  }, 0b1100, 0b1010, 0b1110},
        ArithCase{"xor", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.ixor();
                  }, 0b1100, 0b1010, 0b0110},
        ArithCase{"shl", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.ishl();
                  }, 3, 4, 48},
        ArithCase{"shr", [](BytecodeBuilder &B) -> BytecodeBuilder & {
                    return B.ishr();
                  }, -64, 3, -8}),
    [](const testing::TestParamInfo<ArithCase> &I) {
      return std::string(I.param.Name);
    });

TEST(Interpreter, NegAndIInc) {
  TestVm T;
  BytecodeBuilder B("f");
  uint32_t A = B.addParam(ValKind::Int);
  B.returns(RetKind::Int);
  B.iinc(A, 5).iload(A).ineg().iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_EQ(T.call(M, {Value::makeInt(10)}).asInt(), -15);
}

TEST(Interpreter, DivisionByZeroTraps) {
  TestVm T;
  MethodId M = binOp(T.Vm, "div0",
                     [](BytecodeBuilder &B) -> BytecodeBuilder & {
                       return B.idiv();
                     });
  EXPECT_DEATH(T.call(M, {Value::makeInt(1), Value::makeInt(0)}),
               "division by zero");
}

TEST(Interpreter, LoopSum) {
  TestVm T;
  BytecodeBuilder B("sum");
  uint32_t N = B.addParam(ValKind::Int);
  uint32_t Acc = B.newLocal(), I = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(0).istore(Acc).iconst(1).istore(I);
  Label Loop = B.label(), Done = B.label();
  B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Gt, Done);
  B.iload(Acc).iload(I).iadd().istore(Acc).iinc(I, 1).jump(Loop);
  B.bind(Done).iload(Acc).iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_EQ(T.call(M, {Value::makeInt(10)}).asInt(), 55);
  EXPECT_EQ(T.call(M, {Value::makeInt(0)}).asInt(), 0);
}

TEST(Interpreter, RecursiveFibonacci) {
  TestVm T;
  MethodId Fib = T.Vm.declareMethod("fib", {ValKind::Int}, RetKind::Int);
  BytecodeBuilder B("fib");
  uint32_t N = B.addParam(ValKind::Int);
  B.returns(RetKind::Int);
  Label Rec = B.label();
  B.iload(N).iconst(2).ifICmp(CondKind::Ge, Rec);
  B.iload(N).iret();
  B.bind(Rec);
  B.iload(N).iconst(1).isub().call(Fib);
  B.iload(N).iconst(2).isub().call(Fib);
  B.iadd().iret();
  T.Vm.defineMethod(Fib, B.build());
  EXPECT_EQ(T.call(Fib, {Value::makeInt(10)}).asInt(), 55);
}

TEST(Interpreter, FieldsRoundTrip) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {{"next", true},
                                                 {"val", false}});
  FieldId FNext = T.Vm.classes().fieldId(C, "next");
  FieldId FVal = T.Vm.classes().fieldId(C, "val");
  // Box b = new Box; b.val = 7; Box c = new Box; c.next = b;
  // return c.next.val + b.val;
  BytecodeBuilder B("f");
  uint32_t Lb = B.newLocal(), Lc = B.newLocal();
  B.returns(RetKind::Int);
  B.newObj(C).astore(Lb);
  B.aload(Lb).iconst(7).putfield(FVal);
  B.newObj(C).astore(Lc);
  B.aload(Lc).aload(Lb).putfield(FNext);
  B.aload(Lc).getfield(FNext).getfield(FVal);
  B.aload(Lb).getfield(FVal).iadd().iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_EQ(T.call(M).asInt(), 14);
  EXPECT_GT(T.Gc.Barriers, 0u); // The ref store ran the barrier.
}

TEST(Interpreter, NullFieldAccessTraps) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {{"val", false}});
  FieldId F = T.Vm.classes().fieldId(C, "val");
  BytecodeBuilder B("f");
  B.returns(RetKind::Int);
  B.aconstNull().getfield(F).iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_DEATH(T.call(M), "null pointer");
}

TEST(Interpreter, IntArrayFillAndSum) {
  TestVm T;
  ClassId Arr = T.Vm.classes().defineArrayClass("int[]", ElemKind::I32);
  BytecodeBuilder B("f");
  uint32_t N = B.addParam(ValKind::Int);
  uint32_t A = B.newLocal(), I = B.newLocal(), Acc = B.newLocal();
  B.returns(RetKind::Int);
  B.iload(N).newArray(Arr).astore(A);
  Label L1 = B.label(), D1 = B.label();
  B.iconst(0).istore(I);
  B.bind(L1).iload(I).iload(N).ifICmp(CondKind::Ge, D1);
  B.aload(A).iload(I).iload(I).iload(I).imul().astoreI();
  B.iinc(I, 1).jump(L1);
  B.bind(D1);
  B.iconst(0).istore(Acc).iconst(0).istore(I);
  Label L2 = B.label(), D2 = B.label();
  B.bind(L2).iload(I).aload(A).arraylen().ifICmp(CondKind::Ge, D2);
  B.aload(A).iload(I).aloadI().iload(Acc).iadd().istore(Acc);
  B.iinc(I, 1).jump(L2);
  B.bind(D2).iload(Acc).iret();
  MethodId M = T.Vm.addMethod(B.build());
  // sum of squares 0..9 = 285.
  EXPECT_EQ(T.call(M, {Value::makeInt(10)}).asInt(), 285);
}

TEST(Interpreter, CharArrayZeroExtends) {
  TestVm T;
  ClassId Arr = T.Vm.classes().defineArrayClass("char[]", ElemKind::I16);
  BytecodeBuilder B("f");
  uint32_t A = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(4).newArray(Arr).astore(A);
  B.aload(A).iconst(0).iconst(70000).astoreI(); // Truncated to 16 bits.
  B.aload(A).iconst(0).aloadI().iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_EQ(T.call(M).asInt(), 70000 & 0xffff);
}

TEST(Interpreter, ArrayBoundsTrap) {
  TestVm T;
  ClassId Arr = T.Vm.classes().defineArrayClass("int[]", ElemKind::I32);
  BytecodeBuilder B("f");
  uint32_t A = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(4).newArray(Arr).astore(A);
  B.aload(A).iconst(4).aloadI().iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_DEATH(T.call(M), "out of bounds");
}

TEST(Interpreter, RefArraysAndGlobals) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {{"val", false}});
  FieldId F = T.Vm.classes().fieldId(C, "val");
  ClassId Arr = T.Vm.classes().defineArrayClass("Box[]", ElemKind::Ref);
  uint32_t G = T.Vm.addGlobal(ValKind::Ref);
  // g = new Box[2]; g[1] = new Box{val:9}; return g[1].val;
  BytecodeBuilder B("f");
  uint32_t Bx = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(2).newArray(Arr).gput(G);
  B.newObj(C).astore(Bx);
  B.aload(Bx).iconst(9).putfield(F);
  B.gget(G).iconst(1).aload(Bx).astoreR();
  B.gget(G).iconst(1).aloadR().getfield(F).iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_EQ(T.call(M).asInt(), 9);
  EXPECT_NE(T.Vm.global(G).asRef(), kNullRef);
}

TEST(Interpreter, RandWithinBounds) {
  TestVm T;
  BytecodeBuilder B("f");
  B.returns(RetKind::Int);
  B.iconst(10).rand().iret();
  MethodId M = T.Vm.addMethod(B.build());
  for (int I = 0; I != 50; ++I) {
    int32_t V = T.call(M).asInt();
    EXPECT_GE(V, 0);
    EXPECT_LT(V, 10);
  }
}

TEST(Interpreter, DupAndPop) {
  TestVm T;
  BytecodeBuilder B("f");
  B.returns(RetKind::Int);
  B.iconst(21).dup().iadd().iconst(99).popv().iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_EQ(T.call(M).asInt(), 42);
}

TEST(Interpreter, NullChecksViaIfNull) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {});
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Int);
  uint32_t R = B.newLocal();
  B.returns(RetKind::Int);
  Label MakeNull = B.label(), Test = B.label(), IsNull = B.label();
  B.aconstNull().astore(R);
  B.iload(P).ifZ(CondKind::Eq, Test);
  B.jump(MakeNull);
  B.bind(MakeNull).jump(Test); // Keep R null when P != 0.
  B.bind(Test);
  Label NotNull = B.label();
  B.iload(P).ifZ(CondKind::Ne, IsNull);
  B.newObj(C).astore(R);
  B.aload(R).ifNonNull(NotNull);
  B.bind(IsNull).iconst(0).iret();
  B.bind(NotNull).iconst(1).iret();
  MethodId M = T.Vm.addMethod(B.build());
  EXPECT_EQ(T.call(M, {Value::makeInt(0)}).asInt(), 1);
  EXPECT_EQ(T.call(M, {Value::makeInt(1)}).asInt(), 0);
}

TEST(Interpreter, VerifierRejectsBadMethodAtDefineTime) {
  TestVm T;
  BytecodeBuilder B("bad");
  B.returns(RetKind::Int);
  B.iadd().iret(); // Underflow.
  Method M = B.build();
  EXPECT_DEATH(T.Vm.addMethod(std::move(M)), "verification failed");
}

TEST(Interpreter, CountsExecutedBytecodes) {
  TestVm T;
  BytecodeBuilder B("f");
  B.returns(RetKind::Void);
  B.iconst(1).popv().ret();
  MethodId M = T.Vm.addMethod(B.build());
  T.call(M);
  EXPECT_EQ(T.Vm.stats().BytecodesInterpreted, 3u);
}

} // namespace
