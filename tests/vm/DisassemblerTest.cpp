//===-- tests/vm/DisassemblerTest.cpp -------------------------------------===//

#include "TestSupport.h"

#include "support/Format.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/Disassembler.h"
#include "vm/OptCompiler.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct Rig {
  TestVm T;
  ClassId Box;
  FieldId FNext;
  MethodId Id;

  Rig() {
    Box = T.Vm.classes().defineClass("Box", {{"next", true},
                                             {"v", false}});
    FNext = T.Vm.classes().fieldId(Box, "next");
    BytecodeBuilder B("chase");
    uint32_t P = B.addParam(ValKind::Ref);
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t I = B.newLocal();
    B.returns(RetKind::Ref);
    Label Loop = B.label(), Done = B.label();
    B.iconst(0).istore(I);
    B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
    B.aload(P).getfield(FNext).astore(P);
    B.iinc(I, 1).jump(Loop);
    B.bind(Done).aload(P).aret();
    Id = T.Vm.addMethod(B.build());
  }
};

} // namespace

TEST(Disassembler, BytecodeListingHasSymbolicNames) {
  Rig R;
  std::string Text = disassembleMethod(R.T.Vm.method(R.Id),
                                       R.T.Vm.classes(),
                                       R.T.Vm.methods());
  EXPECT_NE(Text.find("method chase"), std::string::npos);
  EXPECT_NE(Text.find("getfield Box::next"), std::string::npos);
  EXPECT_NE(Text.find("if_icmpge -> "), std::string::npos);
  EXPECT_NE(Text.find("aret"), std::string::npos);
}

TEST(Disassembler, EveryBytecodeOnItsOwnLine) {
  Rig R;
  const Method &M = R.T.Vm.method(R.Id);
  std::string Text =
      disassembleMethod(M, R.T.Vm.classes(), R.T.Vm.methods());
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n';
  EXPECT_EQ(Lines, M.Code.size() + 1); // +1 header.
}

TEST(Disassembler, MachineListingShowsAddressesBcisAndGcPoints) {
  Rig R;
  Method &M = R.T.Vm.method(R.Id);
  R.T.Vm.aos().compileNow(M);
  const MachineFunction &F = R.T.Vm.compiledCode(M.OptIndex);
  std::string Text = disassembleMachineFunction(F, R.T.Vm.classes(),
                                                R.T.Vm.methods());
  EXPECT_NE(Text.find("compiled chase"), std::string::npos);
  EXPECT_NE(Text.find(formatString("0x%08x", F.CodeBase)),
            std::string::npos);
  EXPECT_NE(Text.find("[gc]"), std::string::npos); // Yieldpoints.
  EXPECT_NE(Text.find("loadfield"), std::string::npos);
  EXPECT_NE(Text.find("Box::next"), std::string::npos);
  EXPECT_NE(Text.find("bci="), std::string::npos);
}

TEST(Disassembler, InterestAnnotationsRendered) {
  Rig R;
  Method &M = R.T.Vm.method(R.Id);
  MachineFunction F = OptCompiler::compile(M, R.T.Vm.classes(),
                                           R.T.Vm.methods(),
                                           R.T.Vm.globalKinds());
  // Hand-roll an interest vector marking the first instruction.
  std::vector<FieldId> Interest(F.Insts.size(), kInvalidId);
  Interest[0] = R.FNext;
  std::string Text = disassembleMachineFunction(F, R.T.Vm.classes(),
                                                R.T.Vm.methods(),
                                                &Interest);
  EXPECT_NE(Text.find("; misses -> Box::next"), std::string::npos);
}

TEST(Disassembler, AllOpcodesRender) {
  // Smoke: every opcode must produce some text (no '?' placeholders for
  // opcodes actually produced by the builder/compiler).
  Rig R;
  const Method &M = R.T.Vm.method(R.Id);
  for (const Insn &I : M.Code)
    EXPECT_NE(disassembleInsn(I, R.T.Vm.classes(), R.T.Vm.methods()), "?");
}
