//===-- tests/vm/TestSupport.h - VM test fixtures ---------------*- C++ -*-===//
//
// A minimal never-collecting bump collector so VM tests exercise the
// execution engines in isolation from the real GC plans.
//
//===----------------------------------------------------------------------===//

#ifndef HPMVM_TESTS_VM_TESTSUPPORT_H
#define HPMVM_TESTS_VM_TESTSUPPORT_H

#include "heap/BumpAllocator.h"
#include "heap/GcApi.h"
#include "vm/VirtualMachine.h"

namespace hpmvm {

/// Bump-only collector: never collects, never moves anything.
class TestCollector : public GarbageCollector {
public:
  explicit TestCollector(ObjectModel &Objects) : Objects(Objects) {
    Bump.setRange(Objects.memory().base(), Objects.memory().limit());
  }

  Address allocate(ClassId Cls, uint32_t TotalBytes,
                   uint32_t ArrayLen) override {
    Address A = Bump.alloc(TotalBytes);
    if (A != kNullRef)
      Objects.initObject(A, Cls, TotalBytes, ArrayLen);
    return A;
  }
  void writeBarrier(Address, Address, Address) override { ++Barriers; }
  void collectFull() override {}
  void setRootProvider(RootProvider *) override {}
  void setPlacementAdvisor(PlacementAdvisor *) override {}
  void setGcAllowed(bool) override {}
  const GcStats &stats() const override { return Stats; }
  const char *name() const override { return "TestCollector"; }
  void setGcNotify(std::function<void(bool)>) override {}
  SpaceId spaceOf(Address) const override { return SpaceId::Nursery; }

  uint64_t Barriers = 0;

private:
  ObjectModel &Objects;
  BumpAllocator Bump;
  GcStats Stats;
};

/// A VM wired to the stub collector.
struct TestVm {
  VirtualMachine Vm;
  TestCollector Gc;

  explicit TestVm(uint32_t HeapBytes = 8 * 1024 * 1024, uint64_t Seed = 1)
      : Vm(makeConfig(HeapBytes, Seed)), Gc(Vm.objects()) {
    Vm.setCollector(&Gc);
  }

  static VmConfig makeConfig(uint32_t HeapBytes, uint64_t Seed) {
    VmConfig C;
    C.HeapBytes = HeapBytes;
    C.Seed = Seed;
    return C;
  }

  Value call(MethodId Id, std::vector<Value> Args = {}) {
    return Vm.invoke(Id, std::move(Args));
  }
};

} // namespace hpmvm

#endif // HPMVM_TESTS_VM_TESTSUPPORT_H
