//===-- tests/vm/OptCompilerTest.cpp --------------------------------------===//

#include "TestSupport.h"

#include "vm/BytecodeBuilder.h"
#include "vm/OptCompiler.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

MachineFunction compileOf(TestVm &T, MethodId Id) {
  Method &M = T.Vm.method(Id);
  return OptCompiler::compile(M, T.Vm.classes(), T.Vm.methods(),
                              T.Vm.globalKinds());
}

MethodId sumMethod(TestVm &T) {
  BytecodeBuilder B("sum");
  uint32_t N = B.addParam(ValKind::Int);
  uint32_t Acc = B.newLocal(), I = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(0).istore(Acc).iconst(0).istore(I);
  Label Loop = B.label(), Done = B.label();
  B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Ge, Done);
  B.iload(Acc).iload(I).iadd().istore(Acc).iinc(I, 1).jump(Loop);
  B.bind(Done).iload(Acc).iret();
  return T.Vm.addMethod(B.build());
}

} // namespace

TEST(OptCompiler, EveryInstructionCarriesAValidBci) {
  TestVm T;
  MethodId Id = sumMethod(T);
  MachineFunction F = compileOf(T, Id);
  const Method &M = T.Vm.method(Id);
  ASSERT_FALSE(F.Insts.empty());
  for (const MachineInst &I : F.Insts)
    EXPECT_LT(I.Bci, M.Code.size());
  // The machine-code map is non-decreasing in code order per basic block
  // and covers multiple bytecodes.
  EXPECT_GT(F.Insts.back().Bci, 0u);
}

TEST(OptCompiler, BranchTargetsInRange) {
  TestVm T;
  MethodId Id = sumMethod(T);
  MachineFunction F = compileOf(T, Id);
  for (const MachineInst &I : F.Insts)
    switch (I.Op) {
    case MOp::Br: case MOp::BrCmp: case MOp::BrZero:
    case MOp::BrNull: case MOp::BrNonNull:
      EXPECT_GE(I.Imm, 0);
      EXPECT_LT(static_cast<size_t>(I.Imm), F.Insts.size());
      break;
    default:
      break;
    }
}

TEST(OptCompiler, AllocationsAndCallsAreGcPoints) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {});
  MethodId Callee = T.Vm.addMethod([] {
    BytecodeBuilder B("callee");
    B.returns(RetKind::Void);
    B.ret();
    return B.build();
  }());
  BytecodeBuilder B("f");
  B.returns(RetKind::Void);
  B.newObj(C).popv().call(Callee).ret();
  MethodId Id = T.Vm.addMethod(B.build());
  MachineFunction F = compileOf(T, Id);
  for (const MachineInst &I : F.Insts) {
    if (I.Op == MOp::NewObject) {
      EXPECT_TRUE(I.IsGcPoint);
    }
    if (I.Op == MOp::Call) {
      EXPECT_TRUE(I.IsGcPoint);
    }
  }
  // Plus the prologue yieldpoint (the first instruction, which here is
  // the allocation itself).
  EXPECT_TRUE(F.Insts.front().IsGcPoint);
}

TEST(OptCompiler, BackEdgesAreYieldpoints) {
  TestVm T;
  MethodId Id = sumMethod(T);
  MachineFunction F = compileOf(T, Id);
  bool SawBackEdgeGcPoint = false;
  for (uint32_t I = 0; I != F.Insts.size(); ++I) {
    const MachineInst &MI = F.Insts[I];
    if (MI.Op == MOp::Br && static_cast<uint32_t>(MI.Imm) <= I) {
      EXPECT_TRUE(MI.IsGcPoint);
      SawBackEdgeGcPoint = true;
    }
  }
  EXPECT_TRUE(SawBackEdgeGcPoint);
}

TEST(OptCompiler, PeepholeFoldsConstantAdd) {
  TestVm T;
  BytecodeBuilder B("f");
  uint32_t A = B.addParam(ValKind::Int);
  B.returns(RetKind::Int);
  B.iload(A).iconst(5).iadd().iret();
  MethodId Id = T.Vm.addMethod(B.build());
  MachineFunction F = compileOf(T, Id);
  bool SawAddImm = false, SawPlainAdd = false, SawMovImm = false;
  for (const MachineInst &I : F.Insts) {
    SawAddImm |= I.Op == MOp::AddImm && I.Imm == 5;
    SawPlainAdd |= I.Op == MOp::Add;
    SawMovImm |= I.Op == MOp::MovImm;
  }
  EXPECT_TRUE(SawAddImm);
  EXPECT_FALSE(SawPlainAdd);
  EXPECT_FALSE(SawMovImm) << "the folded constant must not materialize";
}

TEST(OptCompiler, PeepholeFoldsConstantSubNegated) {
  TestVm T;
  BytecodeBuilder B("f");
  uint32_t A = B.addParam(ValKind::Int);
  B.returns(RetKind::Int);
  B.iload(A).iconst(3).isub().iret();
  MethodId Id = T.Vm.addMethod(B.build());
  MachineFunction F = compileOf(T, Id);
  bool SawAddImmNeg = false;
  for (const MachineInst &I : F.Insts)
    SawAddImmNeg |= I.Op == MOp::AddImm && I.Imm == -3;
  EXPECT_TRUE(SawAddImmNeg);
}

TEST(OptCompiler, RefDefsTagged) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {{"next", true}});
  FieldId F = T.Vm.classes().fieldId(C, "next");
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Ref);
  B.returns(RetKind::Ref);
  B.aload(P).getfield(F).aret();
  MethodId Id = T.Vm.addMethod(B.build());
  MachineFunction MF = compileOf(T, Id);
  ASSERT_TRUE(MF.RegIsRefAtEntry[0]);
  bool SawRefLoad = false;
  for (const MachineInst &I : MF.Insts)
    if (I.Op == MOp::LoadField)
      SawRefLoad = I.DstIsRef;
  EXPECT_TRUE(SawRefLoad);
}

TEST(OptCompiler, StackKindsPerBciOnBranchyCode) {
  TestVm T;
  BytecodeBuilder B("f");
  uint32_t P = B.addParam(ValKind::Int);
  B.returns(RetKind::Int);
  Label Other = B.label(), Join = B.label();
  B.iload(P).ifZ(CondKind::Eq, Other); // bci 0,1
  B.iconst(1).jump(Join);              // bci 2,3: depth 1 at 3.
  B.bind(Other).iconst(2);             // bci 4
  B.bind(Join).iret();                 // bci 5: both paths depth 1.
  MethodId Id = T.Vm.addMethod(B.build());
  const Method &M = T.Vm.method(Id);
  auto Kinds = OptCompiler::stackKindsPerBci(M, T.Vm.classes(),
                                             T.Vm.methods(),
                                             T.Vm.globalKinds());
  EXPECT_TRUE(Kinds[0].empty());
  ASSERT_EQ(Kinds[5].size(), 1u);
  EXPECT_EQ(Kinds[5][0], ValKind::Int);
}

TEST(OptCompiler, UnreachableCodeIsSkipped) {
  TestVm T;
  BytecodeBuilder B("f");
  B.returns(RetKind::Int);
  Label End = B.label();
  B.iconst(1).jump(End);
  B.iconst(2).popv(); // Unreachable.
  B.bind(End).iret();
  MethodId Id = T.Vm.addMethod(B.build());
  MachineFunction F = compileOf(T, Id);
  for (const MachineInst &I : F.Insts)
    if (I.Op == MOp::MovImm) {
      EXPECT_NE(I.Imm, 2) << "unreachable constant must not be lowered";
    }
}

TEST(OptCompiler, MapSizesFollowTheModel) {
  TestVm T;
  MethodId Id = sumMethod(T);
  MachineFunction F = compileOf(T, Id);
  CompiledMethodMaps Maps = computeMaps(F);
  EXPECT_EQ(Maps.MachineCodeBytes, F.Insts.size() * kMachineInstBytes);
  EXPECT_EQ(Maps.McMapBytes, F.Insts.size() * kMcMapBytesPerEntry);
  uint32_t GcPoints = 0;
  for (const MachineInst &I : F.Insts)
    GcPoints += I.IsGcPoint;
  EXPECT_EQ(Maps.GcMapBytes, GcPoints * kGcMapBytesPerEntry);
  // sum() has exactly the prologue + back-edge yieldpoints.
  EXPECT_EQ(GcPoints, 2u);
}
