//===-- tests/vm/MethodTableTest.cpp --------------------------------------===//

#include "vm/MethodTable.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(MethodTable, LookupWithinRange) {
  MethodTable T;
  T.add(0x1000, 0x1100, 7, CodeFlavor::Baseline);
  const MethodRange *R = T.lookup(0x1080);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Method, 7u);
  EXPECT_EQ(R->Flavor, CodeFlavor::Baseline);
}

TEST(MethodTable, BoundariesAreHalfOpen) {
  MethodTable T;
  T.add(0x1000, 0x1100, 7, CodeFlavor::Baseline);
  EXPECT_NE(T.lookup(0x1000), nullptr);
  EXPECT_NE(T.lookup(0x10ff), nullptr);
  EXPECT_EQ(T.lookup(0x1100), nullptr);
  EXPECT_EQ(T.lookup(0x0fff), nullptr);
}

TEST(MethodTable, ManyRangesSorted) {
  MethodTable T;
  // Insert out of order; the table keeps itself sorted.
  T.add(0x3000, 0x3040, 3, CodeFlavor::Optimized);
  T.add(0x1000, 0x1040, 1, CodeFlavor::Baseline);
  T.add(0x2000, 0x2040, 2, CodeFlavor::Baseline);
  EXPECT_EQ(T.lookup(0x1020)->Method, 1u);
  EXPECT_EQ(T.lookup(0x2020)->Method, 2u);
  EXPECT_EQ(T.lookup(0x3020)->Method, 3u);
  EXPECT_EQ(T.lookup(0x1800), nullptr);
  EXPECT_EQ(T.size(), 3u);
}

TEST(MethodTable, AdjacentRangesResolveExactly) {
  MethodTable T;
  T.add(0x1000, 0x1040, 1, CodeFlavor::Baseline);
  T.add(0x1040, 0x1080, 2, CodeFlavor::Optimized);
  EXPECT_EQ(T.lookup(0x103f)->Method, 1u);
  EXPECT_EQ(T.lookup(0x1040)->Method, 2u);
}

TEST(MethodTable, SameMethodTwoFlavors) {
  // A recompiled method has both its baseline and optimized ranges live.
  MethodTable T;
  T.add(0x1000, 0x1040, 9, CodeFlavor::Baseline);
  T.add(0x5000, 0x5100, 9, CodeFlavor::Optimized);
  EXPECT_EQ(T.lookup(0x1010)->Flavor, CodeFlavor::Baseline);
  EXPECT_EQ(T.lookup(0x5010)->Flavor, CodeFlavor::Optimized);
}
