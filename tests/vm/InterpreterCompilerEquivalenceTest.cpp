//===-- tests/vm/InterpreterCompilerEquivalenceTest.cpp -------------------===//
//
// Property test: for randomly generated programs, the baseline interpreter
// and the optimizing compiler + machine executor must produce identical
// results. Programs are generated verified-by-construction: statements
// keep the operand stack empty at statement boundaries, divisions guard
// their divisor, array indices are masked into range.
//
//===----------------------------------------------------------------------===//

#include "TestSupport.h"

#include "support/Random.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

constexpr uint32_t kNumLocals = 4;
constexpr int32_t kArrayLen = 8; // Power of two: indices masked with &7.

/// Emits one random statement operating on int locals L0..L3 and the
/// int[8] array held in local Arr.
void emitStatement(BytecodeBuilder &B, SplitMix64 &Rng, uint32_t L0,
                   uint32_t Arr) {
  auto RandLocal = [&] { return L0 + static_cast<uint32_t>(Rng.nextBelow(kNumLocals)); };
  switch (Rng.nextBelow(6)) {
  case 0: { // L[i] = L[j] <op> L[k]
    uint32_t Dst = RandLocal(), A = RandLocal(), C = RandLocal();
    B.iload(A).iload(C);
    switch (Rng.nextBelow(6)) {
    case 0: B.iadd(); break;
    case 1: B.isub(); break;
    case 2: B.imul(); break;
    case 3: B.ixor(); break;
    case 4: B.iand(); break;
    case 5: B.ior(); break;
    }
    B.istore(Dst);
    return;
  }
  case 1: { // L[i] = L[j] / ((L[k] & 7) + 1)  -- guarded division.
    uint32_t Dst = RandLocal(), A = RandLocal(), C = RandLocal();
    B.iload(A).iload(C).iconst(7).iand().iconst(1).iadd();
    if (Rng.nextBelow(2))
      B.idiv();
    else
      B.irem();
    B.istore(Dst);
    return;
  }
  case 2: // L[i] = constant
    B.iconst(static_cast<int32_t>(Rng.nextBelow(1000)) - 500)
        .istore(RandLocal());
    return;
  case 3: { // if (L[i] <cond> L[j]) L[k] = L[m];
    uint32_t A = RandLocal(), C = RandLocal(), Dst = RandLocal(),
             Src = RandLocal();
    Label Skip = B.label();
    CondKind Cond = static_cast<CondKind>(Rng.nextBelow(6));
    // Invert: branch AROUND the assignment.
    B.iload(A).iload(C).ifICmp(Cond, Skip);
    B.iload(Src).istore(Dst);
    B.bind(Skip);
    return;
  }
  case 4: { // arr[L[i] & 7] = L[j]
    uint32_t A = RandLocal(), Src = RandLocal();
    B.aload(Arr).iload(A).iconst(kArrayLen - 1).iand().iload(Src)
        .astoreI();
    return;
  }
  case 5: { // L[i] = arr[L[j] & 7] + L[i]
    uint32_t Dst = RandLocal(), A = RandLocal();
    B.aload(Arr).iload(A).iconst(kArrayLen - 1).iand().aloadI();
    B.iload(Dst).iadd().istore(Dst);
    return;
  }
  }
}

/// Builds a random program: init locals + array, a statement prelude, a
/// bounded loop whose body is more random statements, and a checksum
/// return folding the locals and the array.
Method generateProgram(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  BytecodeBuilder B("rnd");
  uint32_t P = B.addParam(ValKind::Int);
  uint32_t L0 = B.newLocal();
  (void)B.newLocal();
  (void)B.newLocal();
  (void)B.newLocal();
  uint32_t Arr = B.newLocal();
  uint32_t I = B.newLocal(), K = B.newLocal(), Acc = B.newLocal();
  B.returns(RetKind::Int);

  // Locals from the parameter so runs are data-dependent.
  for (uint32_t L = 0; L != kNumLocals; ++L)
    B.iload(P).iconst(static_cast<int32_t>(Rng.nextBelow(97)) + 1).imul()
        .istore(L0 + L);
  B.iconst(kArrayLen).newArray(0).astore(Arr); // ClassId 0 = int[].

  for (int S = 0; S != 6; ++S)
    emitStatement(B, Rng, L0, Arr);

  // Loop: 1 + (seed % 20) iterations of more statements.
  int32_t Iters = 1 + static_cast<int32_t>(Rng.nextBelow(20));
  Label Loop = B.label(), Done = B.label();
  B.iconst(0).istore(I);
  B.bind(Loop).iload(I).iconst(Iters).ifICmp(CondKind::Ge, Done);
  int NumBody = 2 + static_cast<int>(Rng.nextBelow(5));
  for (int S = 0; S != NumBody; ++S)
    emitStatement(B, Rng, L0, Arr);
  B.iinc(I, 1).jump(Loop);
  B.bind(Done);

  // Checksum: fold locals and array into Acc.
  B.iconst(0).istore(Acc);
  for (uint32_t L = 0; L != kNumLocals; ++L)
    B.iload(Acc).iconst(31).imul().iload(L0 + L).ixor().istore(Acc);
  Label SumLoop = B.label(), SumDone = B.label();
  B.iconst(0).istore(K);
  B.bind(SumLoop).iload(K).iconst(kArrayLen).ifICmp(CondKind::Ge, SumDone);
  B.iload(Acc).iconst(31).imul();
  B.aload(Arr).iload(K).aloadI().ixor().istore(Acc);
  B.iinc(K, 1).jump(SumLoop);
  B.bind(SumDone).iload(Acc).iret();
  return B.build();
}

int32_t runProgram(uint64_t Seed, bool Optimized, int32_t Input) {
  TestVm T(8 * 1024 * 1024, /*Seed=*/99); // Same VM seed: Rand op agrees.
  // ClassId 0 must be int[] for generateProgram's newArray(0).
  ClassId Arr = T.Vm.classes().defineArrayClass("int[]", ElemKind::I32);
  EXPECT_EQ(Arr, 0u);
  AosConfig AC;
  AC.Enabled = false;
  T.Vm.aos().setConfig(AC);
  MethodId Id = T.Vm.addMethod(generateProgram(Seed));
  if (Optimized)
    T.Vm.aos().compileNow(T.Vm.method(Id));
  return T.call(Id, {Value::makeInt(Input)}).asInt();
}

class EquivalenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, InterpreterMatchesCompiledCode) {
  uint64_t Seed = GetParam();
  for (int32_t Input : {0, 1, -7, 12345}) {
    int32_t Interp = runProgram(Seed, false, Input);
    int32_t Compiled = runProgram(Seed, true, Input);
    EXPECT_EQ(Interp, Compiled)
        << "divergence at seed " << Seed << " input " << Input;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, EquivalenceTest,
                         testing::Range<uint64_t>(1, 41));

} // namespace
