//===-- tests/vm/MethodLabelTest.cpp --------------------------------------===//
//
// Method-label interning: declareMethod/defineMethod re-intern labels into
// the VM's arena, findMethod resolves through the interner (first
// declaration wins), and Method::Name pointers stay stable while the
// method table grows.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace hpmvm;

namespace {

Method trivialBody(const std::string &Name) {
  BytecodeBuilder B(Name);
  B.ret();
  return B.build();
}

} // namespace

TEST(MethodLabel, FindMethodResolvesInternedLabels) {
  VirtualMachine Vm;
  MethodId A = Vm.addMethod(trivialBody("alpha"));
  MethodId B = Vm.addMethod(trivialBody("beta"));
  EXPECT_EQ(Vm.findMethod("alpha"), A);
  EXPECT_EQ(Vm.findMethod("beta"), B);
  EXPECT_EQ(Vm.findMethod("gamma"), kInvalidId);
  EXPECT_STREQ(Vm.methodLabel(A), "alpha");
  EXPECT_STREQ(Vm.methodLabel(B), "beta");
}

TEST(MethodLabel, FirstDeclarationWinsForDuplicateNames) {
  VirtualMachine Vm;
  MethodId First = Vm.addMethod(trivialBody("dup"));
  MethodId Second = Vm.addMethod(trivialBody("dup"));
  ASSERT_NE(First, Second);
  // The old linear scan returned the lowest id; the interner map must too.
  EXPECT_EQ(Vm.findMethod("dup"), First);
  EXPECT_STREQ(Vm.methodLabel(Second), "dup");
}

TEST(MethodLabel, DeclaredLabelSurvivesDefineAndBuilderDeath) {
  VirtualMachine Vm;
  MethodId Id;
  {
    // The builder (which owns the pre-intern text) dies before define.
    std::string Name = "declared.early";
    Id = Vm.declareMethod(Name, {}, RetKind::Void);
    Name.assign(Name.size(), 'x'); // Clobber the caller's buffer.
  }
  EXPECT_STREQ(Vm.methodLabel(Id), "declared.early");
  Vm.defineMethod(Id, trivialBody("ignored.body.name"));
  // defineMethod keeps the declared label (the historical quirk).
  EXPECT_STREQ(Vm.methodLabel(Id), "declared.early");
  EXPECT_EQ(Vm.findMethod("declared.early"), Id);
}

TEST(MethodLabel, PointersStayStableAsMethodTableGrows) {
  VirtualMachine Vm;
  std::vector<const char *> Ptrs;
  std::vector<std::string> Names;
  for (int I = 0; I != 300; ++I) {
    Names.push_back("m" + std::to_string(I));
    Ptrs.push_back(Vm.methodLabel(Vm.addMethod(trivialBody(Names.back()))));
  }
  for (int I = 0; I != 300; ++I) {
    EXPECT_STREQ(Ptrs[I], Names[I].c_str());
    EXPECT_EQ(Vm.methodLabel(static_cast<MethodId>(I)), Ptrs[I])
        << "label pointer must not move as Methods reallocates";
  }
}
