//===-- tests/vm/MachineExecutorTest.cpp ----------------------------------===//

#include "TestSupport.h"

#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

/// Forces optimized execution of \p Id.
void optimize(TestVm &T, MethodId Id) {
  T.Vm.aos().compileNow(T.Vm.method(Id));
  ASSERT_TRUE(T.Vm.method(Id).isOptCompiled());
}

} // namespace

TEST(MachineExecutor, RunsCompiledLoop) {
  TestVm T;
  BytecodeBuilder B("sum");
  uint32_t N = B.addParam(ValKind::Int);
  uint32_t Acc = B.newLocal(), I = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(0).istore(Acc).iconst(1).istore(I);
  Label Loop = B.label(), Done = B.label();
  B.bind(Loop).iload(I).iload(N).ifICmp(CondKind::Gt, Done);
  B.iload(Acc).iload(I).iadd().istore(Acc).iinc(I, 1).jump(Loop);
  B.bind(Done).iload(Acc).iret();
  MethodId Id = T.Vm.addMethod(B.build());
  optimize(T, Id);
  EXPECT_EQ(T.call(Id, {Value::makeInt(100)}).asInt(), 5050);
  EXPECT_GT(T.Vm.stats().MachineInstsExecuted, 100u);
  EXPECT_EQ(T.Vm.stats().BytecodesInterpreted, 0u);
}

TEST(MachineExecutor, CompiledRecursionAndMixedModes) {
  TestVm T;
  MethodId Fib = T.Vm.declareMethod("fib", {ValKind::Int}, RetKind::Int);
  BytecodeBuilder B("fib");
  uint32_t N = B.addParam(ValKind::Int);
  B.returns(RetKind::Int);
  Label Rec = B.label();
  B.iload(N).iconst(2).ifICmp(CondKind::Ge, Rec);
  B.iload(N).iret();
  B.bind(Rec);
  B.iload(N).iconst(1).isub().call(Fib);
  B.iload(N).iconst(2).isub().call(Fib);
  B.iadd().iret();
  T.Vm.defineMethod(Fib, B.build());
  // Interpreted result first, then compiled: identical.
  int32_t Interp = T.call(Fib, {Value::makeInt(12)}).asInt();
  optimize(T, Fib);
  EXPECT_EQ(T.call(Fib, {Value::makeInt(12)}).asInt(), Interp);
  EXPECT_EQ(Interp, 144);
}

TEST(MachineExecutor, FieldAndArraySemantics) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {{"arr", true},
                                                 {"n", false}});
  FieldId FArr = T.Vm.classes().fieldId(C, "arr");
  FieldId FN = T.Vm.classes().fieldId(C, "n");
  ClassId Arr = T.Vm.classes().defineArrayClass("int[]", ElemKind::I32);
  // Box b = new Box; b.arr = new int[4]; b.arr[2] = 5; b.n = 3;
  // return b.arr[2] * b.n;
  BytecodeBuilder B("f");
  uint32_t Lb = B.newLocal();
  B.returns(RetKind::Int);
  B.newObj(C).astore(Lb);
  B.aload(Lb).iconst(4).newArray(Arr).putfield(FArr);
  B.aload(Lb).getfield(FArr).iconst(2).iconst(5).astoreI();
  B.aload(Lb).iconst(3).putfield(FN);
  B.aload(Lb).getfield(FArr).iconst(2).aloadI();
  B.aload(Lb).getfield(FN).imul().iret();
  MethodId Id = T.Vm.addMethod(B.build());
  optimize(T, Id);
  EXPECT_EQ(T.call(Id).asInt(), 15);
}

TEST(MachineExecutor, RefArrayElementsKeepRefTag) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {{"v", false}});
  FieldId F = T.Vm.classes().fieldId(C, "v");
  ClassId Arr = T.Vm.classes().defineArrayClass("Box[]", ElemKind::Ref);
  BytecodeBuilder B("f");
  uint32_t A = B.newLocal(), Bx = B.newLocal();
  B.returns(RetKind::Int);
  B.iconst(1).newArray(Arr).astore(A);
  B.newObj(C).astore(Bx);
  B.aload(Bx).iconst(31).putfield(F);
  B.aload(A).iconst(0).aload(Bx).astoreR();
  B.aload(A).iconst(0).aloadR().getfield(F).iret();
  MethodId Id = T.Vm.addMethod(B.build());
  optimize(T, Id);
  EXPECT_EQ(T.call(Id).asInt(), 31);
}

TEST(MachineExecutor, NullDerefTrapsInCompiledCode) {
  TestVm T;
  ClassId C = T.Vm.classes().defineClass("Box", {{"v", false}});
  FieldId F = T.Vm.classes().fieldId(C, "v");
  BytecodeBuilder B("f");
  B.returns(RetKind::Int);
  B.aconstNull().getfield(F).iret();
  MethodId Id = T.Vm.addMethod(B.build());
  optimize(T, Id);
  EXPECT_DEATH(T.call(Id), "null pointer");
}

TEST(MachineExecutor, GlobalsWork) {
  TestVm T;
  uint32_t G = T.Vm.addGlobal(ValKind::Int);
  BytecodeBuilder B("f");
  B.returns(RetKind::Int);
  B.iconst(11).gput(G).gget(G).iconst(2).imul().iret();
  MethodId Id = T.Vm.addMethod(B.build());
  optimize(T, Id);
  EXPECT_EQ(T.call(Id).asInt(), 22);
  EXPECT_EQ(T.Vm.global(G).asInt(), 11);
}

TEST(MachineExecutor, CompiledCodeIsFasterPerInstruction) {
  // The whole point of the opt compiler: cycles per semantic operation
  // drop. Run the same loop interpreted and compiled and compare cycles.
  auto RunOnce = [](bool Optimized) {
    TestVm T;
    BytecodeBuilder B("loop");
    uint32_t Acc = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Int);
    B.iconst(0).istore(Acc).iconst(0).istore(I);
    Label Loop = B.label(), Done = B.label();
    B.bind(Loop).iload(I).iconst(20000).ifICmp(CondKind::Ge, Done);
    B.iload(Acc).iload(I).iadd().istore(Acc).iinc(I, 1).jump(Loop);
    B.bind(Done).iload(Acc).iret();
    MethodId Id = T.Vm.addMethod(B.build());
    AosConfig AC;
    AC.Enabled = false;
    T.Vm.aos().setConfig(AC);
    if (Optimized)
      T.Vm.aos().compileNow(T.Vm.method(Id));
    Cycles Before = T.Vm.clock().now();
    T.call(Id);
    return T.Vm.clock().now() - Before;
  };
  Cycles Interp = RunOnce(false);
  Cycles Opt = RunOnce(true);
  EXPECT_LT(Opt * 3, Interp) << "optimized code should be >3x faster";
}
