//===-- tests/memsim/MemoryHierarchyTest.cpp ------------------------------===//

#include "memsim/MemoryHierarchy.h"

#include <gtest/gtest.h>

#include <vector>

using namespace hpmvm;

namespace {

struct RecordingListener : public MemoryEventListener {
  struct Event {
    HpmEventKind Kind;
    Address Pc;
    Address Data;
  };
  std::vector<Event> Events;
  void onMemoryEvent(HpmEventKind Kind, Address Pc, Address Data) override {
    Events.push_back({Kind, Pc, Data});
  }
};

MemoryHierarchyConfig noPrefetchConfig() {
  MemoryHierarchyConfig C;
  C.StreamPrefetch = false;
  return C;
}

} // namespace

TEST(MemoryHierarchy, ColdAccessMissesEverywhere) {
  MemoryHierarchy M(noPrefetchConfig());
  AccessResult R = M.access(0x40000000, 4, false, 0x1000);
  EXPECT_EQ(R.L1Misses, 1);
  EXPECT_EQ(R.L2Misses, 1);
  EXPECT_EQ(R.TlbMisses, 1);
  EXPECT_EQ(R.Penalty, M.config().Latency.MemoryPenalty +
                           M.config().Latency.TlbMissPenalty);
}

TEST(MemoryHierarchy, WarmAccessHits) {
  MemoryHierarchy M(noPrefetchConfig());
  M.access(0x40000000, 4, false, 0x1000);
  AccessResult R = M.access(0x40000004, 4, true, 0x1000);
  EXPECT_EQ(R.L1Misses, 0);
  EXPECT_EQ(R.Penalty, 0u);
}

TEST(MemoryHierarchy, L1MissL2HitPenalty) {
  MemoryHierarchy M(noPrefetchConfig());
  // Touch enough lines to overflow the 16 KB L1 but stay inside L2, then
  // re-touch the first line: L1 miss, L2 hit.
  for (Address A = 0x40000000; A < 0x40000000 + 32 * 1024; A += 128)
    M.access(A, 4, false, 0x1000);
  AccessResult R = M.access(0x40000000, 4, false, 0x1000);
  EXPECT_EQ(R.L1Misses, 1);
  EXPECT_EQ(R.L2Misses, 0);
  EXPECT_EQ(R.Penalty, M.config().Latency.L2HitPenalty);
}

TEST(MemoryHierarchy, LineCrossingTouchesBothLines) {
  MemoryHierarchy M(noPrefetchConfig());
  // 8-byte access straddling a 128-byte boundary.
  AccessResult R = M.access(0x40000000 + 124, 8, false, 0x1000);
  EXPECT_EQ(R.L1Misses, 2);
  EXPECT_EQ(M.stats().L1Misses, 2u);
}

TEST(MemoryHierarchy, ListenerGetsPreciseEvents) {
  MemoryHierarchy M(noPrefetchConfig());
  RecordingListener L;
  M.setListener(&L);
  M.access(0x40000000, 4, false, 0xabcd1234);
  // One TLB miss + one L1 miss + one L2 miss, all tagged with the PC.
  ASSERT_EQ(L.Events.size(), 3u);
  for (const auto &E : L.Events)
    EXPECT_EQ(E.Pc, 0xabcd1234u);
  EXPECT_EQ(L.Events[0].Kind, HpmEventKind::DtlbMiss);
  EXPECT_EQ(L.Events[1].Kind, HpmEventKind::L1DMiss);
  EXPECT_EQ(L.Events[2].Kind, HpmEventKind::L2Miss);
}

TEST(MemoryHierarchy, StreamPrefetchCutsL2MissesOnSequentialScan) {
  MemoryHierarchyConfig WithPf;
  WithPf.StreamPrefetch = true;
  MemoryHierarchy Pf(WithPf);
  MemoryHierarchy NoPf(noPrefetchConfig());
  // Sequential scan of 2 MB (past both caches).
  for (Address A = 0x40000000; A < 0x40000000 + 2 * 1024 * 1024; A += 128) {
    Pf.access(A, 4, false, 0x1000);
    NoPf.access(A, 4, false, 0x1000);
  }
  EXPECT_LT(Pf.stats().L2Misses, NoPf.stats().L2Misses / 2)
      << "the stream prefetcher should hide most sequential L2 misses";
  EXPECT_GT(Pf.stats().PrefetchFills, 0u);
}

TEST(MemoryHierarchy, ResetClearsEverything) {
  MemoryHierarchy M(noPrefetchConfig());
  M.access(0x40000000, 4, false, 0x1000);
  M.reset();
  EXPECT_EQ(M.stats().Accesses, 0u);
  EXPECT_EQ(M.stats().L1Misses, 0u);
  AccessResult R = M.access(0x40000000, 4, false, 0x1000);
  EXPECT_EQ(R.L1Misses, 1); // Cold again.
}

TEST(MemoryHierarchy, StatsAccumulate) {
  MemoryHierarchy M(noPrefetchConfig());
  for (int I = 0; I != 10; ++I)
    M.access(0x40000000, 4, false, 0x1000);
  EXPECT_EQ(M.stats().Accesses, 10u);
  EXPECT_EQ(M.stats().L1Misses, 1u);
}
