//===-- tests/memsim/MemsimEquivalenceTest.cpp ----------------------------===//
//
// Randomized old-vs-new lockstep: the production SoA memsim (Cache.h) must
// be bit-identical -- hit/miss outcomes, eviction order, counters, event
// streams -- to the retired array-of-structs model preserved in
// ReferenceMemsim.h, across geometries (including direct-mapped, single-set,
// non-default line sizes, and the >8-way generic fallback) and five seeds.
//
//===----------------------------------------------------------------------===//

#include "memsim/ReferenceMemsim.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace hpmvm;

namespace {

constexpr uint64_t kSeeds[] = {1, 22, 333, 4444, 55555};

struct EventRec {
  HpmEventKind Kind;
  Address Pc;
  Address Data;
  bool operator==(const EventRec &O) const {
    return Kind == O.Kind && Pc == O.Pc && Data == O.Data;
  }
};

struct Recorder : public MemoryEventListener {
  std::vector<EventRec> Events;
  void onMemoryEvent(HpmEventKind Kind, Address Pc, Address Data) override {
    Events.push_back({Kind, Pc, Data});
  }
};

/// Draws addresses with a mix of set-local reuse, ascending streams (to
/// trip the stream prefetcher), and uniform noise, so hits, misses,
/// promotions, and evictions all occur frequently.
Address drawAddress(SplitMix64 &Rng, Address &Cursor) {
  switch (Rng.nextBelow(8)) {
  case 0:
  case 1:
  case 2: // Local reuse inside a 1 MB window.
    return 0x40000000u + static_cast<Address>(Rng.next() & 0xfffffu);
  case 3:
  case 4: // Ascending stream.
    Cursor += 64 + static_cast<Address>(Rng.nextBelow(3)) * 64;
    return Cursor;
  case 5: // Tight reuse: small pool of hot lines.
    return 0x50000000u + static_cast<Address>(Rng.nextBelow(32)) * 128;
  default: // Uniform noise over the whole 32-bit space.
    return static_cast<Address>(Rng.next());
  }
}

void runCacheLockstep(const CacheConfig &CC, uint64_t Seed) {
  Cache New(CC);
  refmodel::Cache Old(CC);
  SplitMix64 Rng(Seed);
  Address Cursor = 0x60000000u;
  for (int I = 0; I != 20000; ++I) {
    Address A = drawAddress(Rng, Cursor);
    uint64_t Op = Rng.nextBelow(100);
    if (Op < 70) {
      ASSERT_EQ(New.access(A), Old.access(A))
          << "access diverged at op " << I << " addr " << A;
    } else if (Op < 85) {
      ASSERT_EQ(New.contains(A), Old.contains(A))
          << "contains diverged at op " << I << " addr " << A;
    } else if (Op < 99) {
      ASSERT_EQ(New.prefetch(A), Old.prefetch(A))
          << "prefetch diverged at op " << I << " addr " << A;
    } else {
      New.flush();
      Old.flush();
    }
    ASSERT_EQ(New.hits(), Old.hits()) << "hit counters diverged at op " << I;
    ASSERT_EQ(New.misses(), Old.misses())
        << "miss counters diverged at op " << I;
  }
}

void runTlbLockstep(const TlbConfig &TC, uint64_t Seed) {
  Tlb New(TC);
  refmodel::Tlb Old(TC);
  SplitMix64 Rng(Seed);
  Address Cursor = 0x60000000u;
  for (int I = 0; I != 20000; ++I) {
    Address A = drawAddress(Rng, Cursor);
    if (Rng.nextBelow(100) < 99) {
      ASSERT_EQ(New.access(A), Old.access(A))
          << "TLB access diverged at op " << I << " addr " << A;
    } else {
      New.flush();
      Old.flush();
    }
    ASSERT_EQ(New.hits(), Old.hits());
    ASSERT_EQ(New.misses(), Old.misses());
  }
}

void runHierarchyLockstep(const MemoryHierarchyConfig &C, uint64_t Seed) {
  MemoryHierarchy New(C);
  refmodel::MemoryHierarchy Old(C);
  Recorder NewEvents, OldEvents;
  New.setListener(&NewEvents);
  Old.setListener(&OldEvents);
  SplitMix64 Rng(Seed);
  Address Cursor = 0x60000000u;
  for (int I = 0; I != 20000; ++I) {
    Address A = drawAddress(Rng, Cursor);
    Address Pc = 0x1000u + static_cast<Address>(Rng.nextBelow(256)) * 4;
    uint64_t Op = Rng.nextBelow(100);
    if (Op < 90) {
      uint32_t Size = 1 + static_cast<uint32_t>(Rng.nextBelow(16));
      bool IsWrite = Rng.nextBelow(2) != 0;
      AccessResult N = New.access(A, Size, IsWrite, Pc);
      AccessResult O = Old.access(A, Size, IsWrite, Pc);
      ASSERT_EQ(N.Penalty, O.Penalty) << "penalty diverged at op " << I;
      ASSERT_EQ(N.L1Misses, O.L1Misses) << "L1 diverged at op " << I;
      ASSERT_EQ(N.L2Misses, O.L2Misses) << "L2 diverged at op " << I;
      ASSERT_EQ(N.TlbMisses, O.TlbMisses) << "TLB diverged at op " << I;
    } else if (Op < 99) {
      ASSERT_EQ(New.softwarePrefetch(A, Pc), Old.softwarePrefetch(A, Pc))
          << "software prefetch diverged at op " << I;
    } else {
      New.reset();
      Old.reset();
    }
    ASSERT_EQ(NewEvents.Events.size(), OldEvents.Events.size())
        << "event counts diverged at op " << I;
  }
  const MemoryStats &N = New.stats();
  const MemoryStats &O = Old.stats();
  EXPECT_EQ(N.Accesses, O.Accesses);
  EXPECT_EQ(N.L1Misses, O.L1Misses);
  EXPECT_EQ(N.L2Misses, O.L2Misses);
  EXPECT_EQ(N.TlbMisses, O.TlbMisses);
  EXPECT_EQ(N.PrefetchFills, O.PrefetchFills);
  EXPECT_EQ(N.SwPrefetches, O.SwPrefetches);
  EXPECT_EQ(N.SwPrefetchFills, O.SwPrefetchFills);
  EXPECT_EQ(New.l1().hits(), Old.l1().hits());
  EXPECT_EQ(New.l1().misses(), Old.l1().misses());
  EXPECT_EQ(New.l2().hits(), Old.l2().hits());
  EXPECT_EQ(New.l2().misses(), Old.l2().misses());
  EXPECT_EQ(New.dtlb().hits(), Old.dtlb().hits());
  EXPECT_EQ(New.dtlb().misses(), Old.dtlb().misses());
  ASSERT_EQ(NewEvents.Events.size(), OldEvents.Events.size());
  for (size_t I = 0; I != NewEvents.Events.size(); ++I)
    ASSERT_TRUE(NewEvents.Events[I] == OldEvents.Events[I])
        << "event " << I << " diverged";
}

} // namespace

TEST(MemsimEquivalence, CacheDefaultGeometry) {
  for (uint64_t Seed : kSeeds)
    runCacheLockstep(l1DefaultConfig(), Seed);
}

TEST(MemsimEquivalence, CacheTinyTwoWay) {
  for (uint64_t Seed : kSeeds)
    runCacheLockstep({/*SizeBytes=*/512, /*LineBytes=*/64,
                      /*Associativity=*/2},
                     Seed);
}

TEST(MemsimEquivalence, CacheDirectMapped) {
  for (uint64_t Seed : kSeeds)
    runCacheLockstep({/*SizeBytes=*/4096, /*LineBytes=*/64,
                      /*Associativity=*/1},
                     Seed);
}

TEST(MemsimEquivalence, CacheSingleSet) {
  for (uint64_t Seed : kSeeds)
    runCacheLockstep({/*SizeBytes=*/256, /*LineBytes=*/64,
                      /*Associativity=*/4},
                     Seed);
}

TEST(MemsimEquivalence, CacheNonDefaultLineSizes) {
  for (uint64_t Seed : kSeeds) {
    runCacheLockstep({/*SizeBytes=*/2048, /*LineBytes=*/32,
                      /*Associativity=*/4},
                     Seed);
    runCacheLockstep({/*SizeBytes=*/8192, /*LineBytes=*/256,
                      /*Associativity=*/2},
                     Seed);
  }
}

TEST(MemsimEquivalence, CacheWideAssociativityGenericPath) {
  // 16-way exceeds the packed 8-slot layout and exercises the fallback.
  for (uint64_t Seed : kSeeds)
    runCacheLockstep({/*SizeBytes=*/4096, /*LineBytes=*/64,
                      /*Associativity=*/16},
                     Seed);
}

TEST(MemsimEquivalence, TlbDefaultAndTiny) {
  for (uint64_t Seed : kSeeds) {
    runTlbLockstep(dtlbDefaultConfig(), Seed);
    runTlbLockstep({/*Entries=*/4, /*PageBytes=*/4096}, Seed);
    runTlbLockstep({/*Entries=*/1, /*PageBytes=*/1024}, Seed);
  }
}

TEST(MemsimEquivalence, HierarchyDefaultConfig) {
  for (uint64_t Seed : kSeeds)
    runHierarchyLockstep(MemoryHierarchyConfig{}, Seed);
}

TEST(MemsimEquivalence, HierarchySmallCachesNoPrefetch) {
  // Small levels force constant evictions through both L1 and L2.
  MemoryHierarchyConfig C;
  C.L1 = {/*SizeBytes=*/1024, /*LineBytes=*/64, /*Associativity=*/2};
  C.L2 = {/*SizeBytes=*/8192, /*LineBytes=*/64, /*Associativity=*/4};
  C.Dtlb = {/*Entries=*/8, /*PageBytes=*/4096};
  C.StreamPrefetch = false;
  for (uint64_t Seed : kSeeds)
    runHierarchyLockstep(C, Seed);
}

TEST(MemsimEquivalence, HierarchySmallCachesWithPrefetch) {
  MemoryHierarchyConfig C;
  C.L1 = {/*SizeBytes=*/1024, /*LineBytes=*/64, /*Associativity=*/2};
  C.L2 = {/*SizeBytes=*/8192, /*LineBytes=*/64, /*Associativity=*/4};
  C.Dtlb = {/*Entries=*/8, /*PageBytes=*/4096};
  C.StreamPrefetch = true;
  for (uint64_t Seed : kSeeds)
    runHierarchyLockstep(C, Seed);
}
