//===-- tests/memsim/CacheTest.cpp ----------------------------------------===//

#include "memsim/Cache.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

// A tiny 2-way cache with 64-byte lines and 4 sets for precise control.
CacheConfig tinyConfig() {
  return CacheConfig{/*SizeBytes=*/64 * 2 * 4, /*LineBytes=*/64,
                     /*Associativity=*/2};
}

} // namespace

TEST(Cache, DefaultGeometryMatchesPaper) {
  CacheConfig L1 = l1DefaultConfig();
  EXPECT_EQ(L1.SizeBytes, 16u * 1024);
  EXPECT_EQ(L1.LineBytes, 128u);
  CacheConfig L2 = l2DefaultConfig();
  EXPECT_EQ(L2.SizeBytes, 1024u * 1024);
  EXPECT_EQ(L2.LineBytes, 128u);
}

TEST(Cache, MissThenHit) {
  Cache C(tinyConfig());
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1001)); // Same line.
  EXPECT_TRUE(C.access(0x103f));
  EXPECT_FALSE(C.access(0x1040)); // Next line.
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 3u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache C(tinyConfig());
  // Three lines mapping to the same set (set stride = 4 sets * 64 = 256).
  Address A = 0x0, B = 0x100, D = 0x200;
  C.access(A);
  C.access(B);
  C.access(A);       // A is now MRU, B is LRU.
  C.access(D);       // Evicts B.
  EXPECT_TRUE(C.contains(A));
  EXPECT_FALSE(C.contains(B));
  EXPECT_TRUE(C.contains(D));
}

TEST(Cache, ContainsDoesNotTouchLru) {
  Cache C(tinyConfig());
  Address A = 0x0, B = 0x100, D = 0x200;
  C.access(A);
  C.access(B); // A is LRU.
  EXPECT_TRUE(C.contains(A));
  C.access(D); // Must evict A even though contains() looked at it.
  EXPECT_FALSE(C.contains(A));
  EXPECT_TRUE(C.contains(B));
}

TEST(Cache, PrefetchFillsWithoutMissCount) {
  Cache C(tinyConfig());
  EXPECT_TRUE(C.prefetch(0x40));
  EXPECT_EQ(C.misses(), 0u);
  EXPECT_TRUE(C.access(0x40)); // Already present.
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_FALSE(C.prefetch(0x40)); // Second prefetch is a no-op.
}

TEST(Cache, Flush) {
  Cache C(tinyConfig());
  C.access(0x40);
  C.flush();
  EXPECT_FALSE(C.contains(0x40));
  EXPECT_FALSE(C.access(0x40));
}

TEST(Cache, SetsAreIndependent) {
  Cache C(tinyConfig());
  // Fill 2 ways of set 0; set 1 unaffected.
  C.access(0x0);
  C.access(0x100);
  C.access(0x200); // Evicts within set 0 only.
  EXPECT_FALSE(C.access(0x40)); // Set 1 first touch: miss...
  EXPECT_TRUE(C.access(0x40));  // ...then hit.
}

// Property: a linear sweep larger than the cache misses once per line on
// the first pass and again on the second (capacity eviction, LRU).
TEST(Cache, CapacitySweepProperty) {
  Cache C(tinyConfig()); // 512 bytes total.
  const uint32_t Lines = 16;  // 1 KB sweep = 2x capacity.
  for (uint32_t Pass = 0; Pass != 2; ++Pass)
    for (uint32_t L = 0; L != Lines; ++L)
      C.access(L * 64);
  EXPECT_EQ(C.misses(), 2u * Lines);
  EXPECT_EQ(C.hits(), 0u);
}

//===----------------------------------------------------------------------===//
// Reference-model property test: the set-associative LRU cache must agree
// with a brute-force reference implementation on random access traces.
//===----------------------------------------------------------------------===//

#include <list>
#include <map>

namespace {

/// Obviously-correct reference: per set, an explicit LRU list of tags.
class ReferenceCache {
public:
  explicit ReferenceCache(const CacheConfig &C) : Config(C) {}

  bool access(Address Addr) {
    uint64_t Line = Addr / Config.LineBytes;
    uint32_t Set = static_cast<uint32_t>(Line % Config.numSets());
    uint64_t Tag = Line / Config.numSets();
    auto &Lru = Sets[Set];
    for (auto It = Lru.begin(); It != Lru.end(); ++It)
      if (*It == Tag) {
        Lru.erase(It);
        Lru.push_front(Tag); // Most recently used at the front.
        return true;
      }
    Lru.push_front(Tag);
    if (Lru.size() > Config.Associativity)
      Lru.pop_back();
    return false;
  }

private:
  CacheConfig Config;
  std::map<uint32_t, std::list<uint64_t>> Sets;
};

} // namespace

class CacheReferenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CacheReferenceTest, MatchesReferenceModelOnRandomTrace) {
  CacheConfig Config = tinyConfig();
  Cache C(Config);
  ReferenceCache Ref(Config);
  SplitMix64 Rng(GetParam());
  // Mixed trace: random lines in a window ~4x the cache, plus sequential
  // bursts for LRU-order stress.
  Address Burst = 0;
  for (int I = 0; I != 20000; ++I) {
    Address A;
    if (Rng.nextBelow(8) == 0) {
      A = Burst;
      Burst += 64;
    } else {
      A = static_cast<Address>(Rng.nextBelow(4 * Config.SizeBytes));
    }
    ASSERT_EQ(C.access(A), Ref.access(A))
        << "divergence at access " << I << ", address " << A;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheReferenceTest,
                         testing::Values(1, 22, 333, 4444, 55555));

//===----------------------------------------------------------------------===//
// Edge geometries, golden LRU order, and the 64-bit lineBase regression.
// Scripted expectations run against BOTH the production SoA cache and the
// legacy model preserved in ReferenceMemsim.h, so a behavior drift in either
// implementation trips the same pin.
//===----------------------------------------------------------------------===//

#include "memsim/ReferenceMemsim.h"

namespace {

/// One scripted step: access \p Addr, expect \p Hit.
struct Step {
  Address Addr;
  bool Hit;
};

template <typename CacheT>
void runScript(CacheT &C, const Step *Steps, size_t N) {
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(C.access(Steps[I].Addr), Steps[I].Hit)
        << "step " << I << " addr " << Steps[I].Addr;
}

template <size_t N>
void runScriptBothPaths(const CacheConfig &Config, const Step (&Steps)[N]) {
  Cache Fast(Config);
  runScript(Fast, Steps, N);
  refmodel::Cache Legacy(Config);
  runScript(Legacy, Steps, N);
}

} // namespace

TEST(CacheGeometry, DirectMappedConflictsImmediately) {
  // Associativity 1: two lines in the same set always evict each other.
  CacheConfig Config{/*SizeBytes=*/256, /*LineBytes=*/64, /*Associativity=*/1};
  // 4 sets, set stride 256.
  const Step Steps[] = {
      {0x000, false}, {0x000, true},  // Fill then hit.
      {0x100, false},                 // Same set, different tag: evicts.
      {0x000, false},                 // Ping-pong back.
      {0x100, false},
      {0x040, false}, {0x040, true},  // Other sets unaffected.
      {0x100, true},                  // Still resident; set 1 is separate.
      {0x000, false},                 // Evicts 0x100 again.
      {0x100, false},
  };
  runScriptBothPaths(Config, Steps);
}

TEST(CacheGeometry, SingleSetBehavesFullyAssociative) {
  // numSets == 1: every line contends in one 4-way set.
  CacheConfig Config{/*SizeBytes=*/256, /*LineBytes=*/64, /*Associativity=*/4};
  ASSERT_EQ(Config.numSets(), 1u);
  const Step Steps[] = {
      {0x000, false}, {0x040, false}, {0x080, false}, {0x0c0, false},
      {0x000, true},                  // Still resident; LRU is now 0x040.
      {0x100, false},                 // Evicts 0x040.
      {0x040, false},                 // Confirms eviction; evicts 0x080.
      {0x0c0, true},  {0x000, true}, {0x100, true},
  };
  runScriptBothPaths(Config, Steps);
}

TEST(CacheGeometry, NonDefaultLineSizes) {
  // 32-byte lines: adjacent 32-byte blocks are distinct lines.
  CacheConfig Small{/*SizeBytes=*/512, /*LineBytes=*/32, /*Associativity=*/2};
  const Step SmallSteps[] = {
      {0x00, false}, {0x1f, true},  // Same 32-byte line.
      {0x20, false},                // Next line.
      {0x00, true},
  };
  runScriptBothPaths(Small, SmallSteps);

  // 256-byte lines: a whole 256-byte block is one line.
  CacheConfig Big{/*SizeBytes=*/2048, /*LineBytes=*/256, /*Associativity=*/2};
  const Step BigSteps[] = {
      {0x000, false}, {0x0ff, true}, // Same 256-byte line.
      {0x100, false},                // Next line.
  };
  runScriptBothPaths(Big, BigSteps);
}

TEST(CacheGeometry, WideAssociativityGenericPath) {
  // 16-way single set: beyond the packed 8-slot layout.
  CacheConfig Config{/*SizeBytes=*/1024, /*LineBytes=*/64,
                     /*Associativity=*/16};
  ASSERT_EQ(Config.numSets(), 1u);
  Cache C(Config);
  for (Address A = 0; A != 16 * 64; A += 64)
    EXPECT_FALSE(C.access(A));
  for (Address A = 0; A != 16 * 64; A += 64)
    EXPECT_TRUE(C.access(A)); // All 16 resident.
  EXPECT_FALSE(C.access(16 * 64)); // Evicts line 0 (LRU).
  EXPECT_FALSE(C.contains(0x0));
  EXPECT_TRUE(C.contains(0x40));
}

TEST(CacheLruGolden, ExactEvictionSequenceFourWay) {
  // One 4-way set; the full script pins the exact true-LRU eviction order,
  // including promotions by hits and a prefetch fill.
  CacheConfig Config{/*SizeBytes=*/256, /*LineBytes=*/64, /*Associativity=*/4};
  auto Line = [](Address N) { return N * 64; };

  for (int Path = 0; Path != 2; ++Path) {
    Cache Fast(Config);
    refmodel::Cache Legacy(Config);
    auto Access = [&](Address N) {
      return Path == 0 ? Fast.access(Line(N)) : Legacy.access(Line(N));
    };
    auto Contains = [&](Address N) {
      return Path == 0 ? Fast.contains(Line(N)) : Legacy.contains(Line(N));
    };
    auto Prefetch = [&](Address N) {
      return Path == 0 ? Fast.prefetch(Line(N)) : Legacy.prefetch(Line(N));
    };

    // Fill: LRU order (oldest first) is 0,1,2,3.
    for (Address N = 0; N != 4; ++N)
      EXPECT_FALSE(Access(N)) << "path " << Path;
    // Promote 0 and 1: order is now 2,3,0,1.
    EXPECT_TRUE(Access(0));
    EXPECT_TRUE(Access(1));
    // Miss on 4 evicts 2: order 3,0,1,4.
    EXPECT_FALSE(Access(4));
    EXPECT_FALSE(Contains(2)) << "path " << Path;
    // Prefetch 5 evicts 3 and makes 5 MRU: order 0,1,4,5.
    EXPECT_TRUE(Prefetch(5));
    EXPECT_FALSE(Contains(3)) << "path " << Path;
    // Prefetch of a resident line does NOT promote: order still 0,1,4,5.
    EXPECT_FALSE(Prefetch(0));
    // Miss on 6 evicts 0 (proving the prefetch above didn't touch LRU).
    EXPECT_FALSE(Access(6));
    EXPECT_FALSE(Contains(0)) << "path " << Path;
    // Exact survivors, exact order 1,4,5,6: three more misses evict in
    // precisely that order.
    EXPECT_FALSE(Access(7));
    EXPECT_FALSE(Contains(1)) << "path " << Path;
    EXPECT_FALSE(Access(8));
    EXPECT_FALSE(Contains(4)) << "path " << Path;
    EXPECT_FALSE(Access(9));
    EXPECT_FALSE(Contains(5)) << "path " << Path;
    EXPECT_TRUE(Contains(6)) << "path " << Path;
  }
}

TEST(Cache, LineBaseKeepsHighHalfOf64BitAddresses) {
  // Regression: the old mask `~(Config.LineBytes - 1)` complemented in
  // uint32_t, so a 64-bit address above 4 GiB lost bits 32..63.
  Cache C(tinyConfig()); // 64-byte lines.
  uint64_t Above4G = 0x240000123ull;
  EXPECT_EQ(C.lineBase(Above4G), 0x240000100ull);
  refmodel::Cache Legacy(tinyConfig());
  EXPECT_EQ(Legacy.lineBase(Above4G), 0x240000100ull);
  // 32-bit callers are unchanged.
  EXPECT_EQ(C.lineBase(static_cast<Address>(0x1234)), 0x1200u);
}
