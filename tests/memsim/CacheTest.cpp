//===-- tests/memsim/CacheTest.cpp ----------------------------------------===//

#include "memsim/Cache.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

// A tiny 2-way cache with 64-byte lines and 4 sets for precise control.
CacheConfig tinyConfig() {
  return CacheConfig{/*SizeBytes=*/64 * 2 * 4, /*LineBytes=*/64,
                     /*Associativity=*/2};
}

} // namespace

TEST(Cache, DefaultGeometryMatchesPaper) {
  CacheConfig L1 = l1DefaultConfig();
  EXPECT_EQ(L1.SizeBytes, 16u * 1024);
  EXPECT_EQ(L1.LineBytes, 128u);
  CacheConfig L2 = l2DefaultConfig();
  EXPECT_EQ(L2.SizeBytes, 1024u * 1024);
  EXPECT_EQ(L2.LineBytes, 128u);
}

TEST(Cache, MissThenHit) {
  Cache C(tinyConfig());
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1001)); // Same line.
  EXPECT_TRUE(C.access(0x103f));
  EXPECT_FALSE(C.access(0x1040)); // Next line.
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 3u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache C(tinyConfig());
  // Three lines mapping to the same set (set stride = 4 sets * 64 = 256).
  Address A = 0x0, B = 0x100, D = 0x200;
  C.access(A);
  C.access(B);
  C.access(A);       // A is now MRU, B is LRU.
  C.access(D);       // Evicts B.
  EXPECT_TRUE(C.contains(A));
  EXPECT_FALSE(C.contains(B));
  EXPECT_TRUE(C.contains(D));
}

TEST(Cache, ContainsDoesNotTouchLru) {
  Cache C(tinyConfig());
  Address A = 0x0, B = 0x100, D = 0x200;
  C.access(A);
  C.access(B); // A is LRU.
  EXPECT_TRUE(C.contains(A));
  C.access(D); // Must evict A even though contains() looked at it.
  EXPECT_FALSE(C.contains(A));
  EXPECT_TRUE(C.contains(B));
}

TEST(Cache, PrefetchFillsWithoutMissCount) {
  Cache C(tinyConfig());
  EXPECT_TRUE(C.prefetch(0x40));
  EXPECT_EQ(C.misses(), 0u);
  EXPECT_TRUE(C.access(0x40)); // Already present.
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_FALSE(C.prefetch(0x40)); // Second prefetch is a no-op.
}

TEST(Cache, Flush) {
  Cache C(tinyConfig());
  C.access(0x40);
  C.flush();
  EXPECT_FALSE(C.contains(0x40));
  EXPECT_FALSE(C.access(0x40));
}

TEST(Cache, SetsAreIndependent) {
  Cache C(tinyConfig());
  // Fill 2 ways of set 0; set 1 unaffected.
  C.access(0x0);
  C.access(0x100);
  C.access(0x200); // Evicts within set 0 only.
  EXPECT_FALSE(C.access(0x40)); // Set 1 first touch: miss...
  EXPECT_TRUE(C.access(0x40));  // ...then hit.
}

// Property: a linear sweep larger than the cache misses once per line on
// the first pass and again on the second (capacity eviction, LRU).
TEST(Cache, CapacitySweepProperty) {
  Cache C(tinyConfig()); // 512 bytes total.
  const uint32_t Lines = 16;  // 1 KB sweep = 2x capacity.
  for (uint32_t Pass = 0; Pass != 2; ++Pass)
    for (uint32_t L = 0; L != Lines; ++L)
      C.access(L * 64);
  EXPECT_EQ(C.misses(), 2u * Lines);
  EXPECT_EQ(C.hits(), 0u);
}

//===----------------------------------------------------------------------===//
// Reference-model property test: the set-associative LRU cache must agree
// with a brute-force reference implementation on random access traces.
//===----------------------------------------------------------------------===//

#include <list>
#include <map>

namespace {

/// Obviously-correct reference: per set, an explicit LRU list of tags.
class ReferenceCache {
public:
  explicit ReferenceCache(const CacheConfig &C) : Config(C) {}

  bool access(Address Addr) {
    uint64_t Line = Addr / Config.LineBytes;
    uint32_t Set = static_cast<uint32_t>(Line % Config.numSets());
    uint64_t Tag = Line / Config.numSets();
    auto &Lru = Sets[Set];
    for (auto It = Lru.begin(); It != Lru.end(); ++It)
      if (*It == Tag) {
        Lru.erase(It);
        Lru.push_front(Tag); // Most recently used at the front.
        return true;
      }
    Lru.push_front(Tag);
    if (Lru.size() > Config.Associativity)
      Lru.pop_back();
    return false;
  }

private:
  CacheConfig Config;
  std::map<uint32_t, std::list<uint64_t>> Sets;
};

} // namespace

class CacheReferenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CacheReferenceTest, MatchesReferenceModelOnRandomTrace) {
  CacheConfig Config = tinyConfig();
  Cache C(Config);
  ReferenceCache Ref(Config);
  SplitMix64 Rng(GetParam());
  // Mixed trace: random lines in a window ~4x the cache, plus sequential
  // bursts for LRU-order stress.
  Address Burst = 0;
  for (int I = 0; I != 20000; ++I) {
    Address A;
    if (Rng.nextBelow(8) == 0) {
      A = Burst;
      Burst += 64;
    } else {
      A = static_cast<Address>(Rng.nextBelow(4 * Config.SizeBytes));
    }
    ASSERT_EQ(C.access(A), Ref.access(A))
        << "divergence at access " << I << ", address " << A;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheReferenceTest,
                         testing::Values(1, 22, 333, 4444, 55555));
