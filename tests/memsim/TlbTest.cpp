//===-- tests/memsim/TlbTest.cpp ------------------------------------------===//

#include "memsim/Tlb.h"

#include <gtest/gtest.h>

using namespace hpmvm;

TEST(Tlb, DefaultGeometryMatchesP4) {
  TlbConfig C = dtlbDefaultConfig();
  EXPECT_EQ(C.Entries, 64u);
  EXPECT_EQ(C.PageBytes, 4096u);
}

TEST(Tlb, PageGranularity) {
  Tlb T(TlbConfig{4, 4096});
  EXPECT_FALSE(T.access(0x1000));
  EXPECT_TRUE(T.access(0x1abc)); // Same page.
  EXPECT_FALSE(T.access(0x2000)); // Next page.
  EXPECT_EQ(T.misses(), 2u);
  EXPECT_EQ(T.hits(), 1u);
}

TEST(Tlb, LruCapacityEviction) {
  Tlb T(TlbConfig{2, 4096});
  T.access(0x0000);
  T.access(0x1000);
  T.access(0x0000); // Page 0 is MRU.
  T.access(0x2000); // Evicts page 1.
  EXPECT_TRUE(T.access(0x0000));
  EXPECT_FALSE(T.access(0x1000)); // Was evicted.
}

TEST(Tlb, Flush) {
  Tlb T(TlbConfig{4, 4096});
  T.access(0x3000);
  T.flush();
  EXPECT_FALSE(T.access(0x3000));
}
