//===-- tests/integration/TelemetryTest.cpp -------------------------------===//
//
// End-to-end telemetry: a monitored run exports non-zero pipeline metrics,
// a baseline run exports zeroed HPM metrics, and the file exporters
// produce a Chrome trace carrying the GC-pause and collector-poll events
// the Figure 7 timeline is read from.
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include "tests/obs/TestJson.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace hpmvm;

namespace {

RunConfig smallDb(bool Monitoring) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = 25;
  C.HeapFactor = 3.0;
  C.Monitoring = Monitoring;
  C.Coallocation = Monitoring;
  if (Monitoring)
    C.Monitor.SamplingInterval = 5000;
  return C;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

} // namespace

TEST(Telemetry, MonitoredRunCountsTheWholePipeline) {
  RunResult R = runExperiment(smallDb(/*Monitoring=*/true));
  const MetricsSnapshot &M = R.Metrics;

  // The acceptance triple: samples flowed, were resolved, and GCs ran.
  EXPECT_GT(M.counter("hpm.samples_collected"), 0u);
  EXPECT_GT(M.counter("resolver.resolved"), 0u);
  EXPECT_GT(M.counter("gc.collections"), 0u);

  // And the stages in between actually moved the data.
  EXPECT_GT(M.counter("hpm.kernel.samples_delivered"), 0u);
  EXPECT_GT(M.counter("hpm.native.samples_copied"), 0u);
  EXPECT_GT(M.counter("collector.polls"), 0u);
  EXPECT_GT(M.counter("collector.samples_delivered"), 0u);
  EXPECT_GT(M.counter("monitor.batches"), 0u);
  EXPECT_GT(M.counter("misstable.misses_recorded"), 0u);
  EXPECT_GT(M.counter("gc.pause_cycles"), 0u);

  // Metric counts agree with the component stats the seed already kept.
  EXPECT_EQ(M.counter("hpm.samples_collected"), R.SamplesTaken);
  EXPECT_EQ(M.counter("gc.collections"),
            R.Gc.MinorCollections + R.Gc.MajorCollections);
}

TEST(Telemetry, BaselineRunExportsZeroHpmMetrics) {
  RunResult R = runExperiment(smallDb(/*Monitoring=*/false));
  const MetricsSnapshot &M = R.Metrics;

  // No monitor attached: every HPM-pipeline metric reads zero.
  EXPECT_EQ(M.counter("hpm.samples_collected"), 0u);
  EXPECT_EQ(M.counter("resolver.resolved"), 0u);
  EXPECT_EQ(M.counter("collector.polls"), 0u);
  EXPECT_EQ(M.counter("monitor.batches"), 0u);
  EXPECT_EQ(M.counter("misstable.misses_recorded"), 0u);

  // The VM and GC still count.
  EXPECT_GT(M.counter("gc.collections"), 0u);
}

TEST(Telemetry, TraceAndMetricsFilesPassAcceptance) {
  std::string MetricsPath = ::testing::TempDir() + "telemetry_metrics.json";
  std::string TracePath = ::testing::TempDir() + "telemetry_trace.json";

  RunConfig C = smallDb(/*Monitoring=*/true);
  C.Obs.MetricsOutPath = MetricsPath;
  C.Obs.TraceOutPath = TracePath;
  Experiment E(C);
  E.run();

  bool Ok = false;
  auto Metrics = testjson::parse(slurp(MetricsPath), Ok);
  ASSERT_TRUE(Ok) << "metrics export must be valid JSON";
  auto Counters = Metrics->get("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  for (const char *Name :
       {"hpm.samples_collected", "resolver.resolved", "gc.collections"}) {
    auto V = Counters->get(Name);
    ASSERT_TRUE(V && V->isNumber()) << Name;
    EXPECT_GT(V->Num, 0.0) << Name;
  }

  auto Trace = testjson::parse(slurp(TracePath), Ok);
  ASSERT_TRUE(Ok) << "trace export must be valid JSON";
  auto Events = Trace->get("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  size_t GcPauses = 0, Polls = 0;
  double LastTs = -1.0;
  bool Monotone = true;
  for (const auto &Ev : Events->Arr) {
    const std::string &Name = Ev->get("name")->Str;
    if (Name == "gc.minor" || Name == "gc.full") {
      ++GcPauses;
      EXPECT_EQ(Ev->get("ph")->Str, "X");
      EXPECT_GT(Ev->get("dur")->Num, 0.0);
    } else if (Name == "collector.poll") {
      ++Polls;
    }
    double Ts = Ev->get("ts")->Num;
    if (Ts < LastTs)
      Monotone = false;
    LastTs = Ts;
  }
  EXPECT_GT(GcPauses, 0u) << "trace must contain GC pause spans";
  EXPECT_GT(Polls, 0u) << "trace must contain collector poll events";
  EXPECT_TRUE(Monotone) << "trace events must be in timestamp order";

  remove(MetricsPath.c_str());
  remove(TracePath.c_str());
}

TEST(Telemetry, InstrumentationDoesNotChangeResults) {
  // Two identical monitored runs, one with a tiny trace buffer forcing
  // wraparound: telemetry must never perturb the simulation.
  RunConfig A = smallDb(/*Monitoring=*/true);
  RunConfig B = A;
  B.Obs.TraceCapacity = 16;
  RunResult Ra = runExperiment(A);
  RunResult Rb = runExperiment(B);
  EXPECT_EQ(Ra.TotalCycles, Rb.TotalCycles);
  EXPECT_EQ(Ra.Gc.MinorCollections, Rb.Gc.MinorCollections);
  EXPECT_EQ(Ra.SamplesTaken, Rb.SamplesTaken);
  EXPECT_EQ(Ra.Memory.L1Misses, Rb.Memory.L1Misses);
}
