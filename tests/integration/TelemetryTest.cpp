//===-- tests/integration/TelemetryTest.cpp -------------------------------===//
//
// End-to-end telemetry: a monitored run exports non-zero pipeline metrics,
// a baseline run exports zeroed HPM metrics, and the file exporters
// produce a Chrome trace carrying the GC-pause and collector-poll events
// the Figure 7 timeline is read from.
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace hpmvm;

namespace {

RunConfig smallDb(bool Monitoring) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = 25;
  C.HeapFactor = 3.0;
  C.Monitoring = Monitoring;
  C.Coallocation = Monitoring;
  if (Monitoring)
    C.Monitor.SamplingInterval = 5000;
  return C;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

} // namespace

TEST(Telemetry, MonitoredRunCountsTheWholePipeline) {
  RunResult R = runExperiment(smallDb(/*Monitoring=*/true));
  const MetricsSnapshot &M = R.Metrics;

  // The acceptance triple: samples flowed, were resolved, and GCs ran.
  EXPECT_GT(M.counter("hpm.samples_collected"), 0u);
  EXPECT_GT(M.counter("resolver.resolved"), 0u);
  EXPECT_GT(M.counter("gc.collections"), 0u);

  // And the stages in between actually moved the data.
  EXPECT_GT(M.counter("hpm.kernel.samples_delivered"), 0u);
  EXPECT_GT(M.counter("hpm.native.samples_copied"), 0u);
  EXPECT_GT(M.counter("collector.polls"), 0u);
  EXPECT_GT(M.counter("collector.samples_delivered"), 0u);
  EXPECT_GT(M.counter("monitor.batches"), 0u);
  EXPECT_GT(M.counter("misstable.misses_recorded"), 0u);
  EXPECT_GT(M.counter("gc.pause_cycles"), 0u);

  // Metric counts agree with the component stats the seed already kept.
  EXPECT_EQ(M.counter("hpm.samples_collected"), R.SamplesTaken);
  EXPECT_EQ(M.counter("gc.collections"),
            R.Gc.MinorCollections + R.Gc.MajorCollections);
}

TEST(Telemetry, BaselineRunExportsZeroHpmMetrics) {
  RunResult R = runExperiment(smallDb(/*Monitoring=*/false));
  const MetricsSnapshot &M = R.Metrics;

  // No monitor attached: every HPM-pipeline metric reads zero.
  EXPECT_EQ(M.counter("hpm.samples_collected"), 0u);
  EXPECT_EQ(M.counter("resolver.resolved"), 0u);
  EXPECT_EQ(M.counter("collector.polls"), 0u);
  EXPECT_EQ(M.counter("monitor.batches"), 0u);
  EXPECT_EQ(M.counter("misstable.misses_recorded"), 0u);

  // The VM and GC still count.
  EXPECT_GT(M.counter("gc.collections"), 0u);
}

TEST(Telemetry, TraceAndMetricsFilesPassAcceptance) {
  std::string MetricsPath = ::testing::TempDir() + "telemetry_metrics.json";
  std::string TracePath = ::testing::TempDir() + "telemetry_trace.json";

  RunConfig C = smallDb(/*Monitoring=*/true);
  C.Obs.MetricsOutPath = MetricsPath;
  C.Obs.TraceOutPath = TracePath;
  Experiment E(C);
  E.run();

  bool Ok = false;
  auto Metrics = json::parse(slurp(MetricsPath), Ok);
  ASSERT_TRUE(Ok) << "metrics export must be valid JSON";
  auto Counters = Metrics->get("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  for (const char *Name :
       {"hpm.samples_collected", "resolver.resolved", "gc.collections"}) {
    auto V = Counters->get(Name);
    ASSERT_TRUE(V && V->isNumber()) << Name;
    EXPECT_GT(V->Num, 0.0) << Name;
  }

  auto Trace = json::parse(slurp(TracePath), Ok);
  ASSERT_TRUE(Ok) << "trace export must be valid JSON";
  auto Events = Trace->get("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  size_t GcPauses = 0, Polls = 0;
  double LastTs = -1.0;
  bool Monotone = true;
  for (const auto &Ev : Events->Arr) {
    const std::string &Name = Ev->get("name")->Str;
    if (Name == "gc.minor" || Name == "gc.full") {
      ++GcPauses;
      EXPECT_EQ(Ev->get("ph")->Str, "X");
      EXPECT_GT(Ev->get("dur")->Num, 0.0);
    } else if (Name == "collector.poll") {
      ++Polls;
    }
    double Ts = Ev->get("ts")->Num;
    if (Ts < LastTs)
      Monotone = false;
    LastTs = Ts;
  }
  EXPECT_GT(GcPauses, 0u) << "trace must contain GC pause spans";
  EXPECT_GT(Polls, 0u) << "trace must contain collector poll events";
  EXPECT_TRUE(Monotone) << "trace events must be in timestamp order";

  remove(MetricsPath.c_str());
  remove(TracePath.c_str());
}

TEST(Telemetry, MonitoredRunJournalsItsDecisions) {
  RunConfig C = smallDb(/*Monitoring=*/true);
  RunResult R = runExperiment(C);
  // The coallocation advisor runs under this config; at minimum its
  // sampling-policy/coalloc traffic must appear, clock-stamped, in order.
  ASSERT_FALSE(R.Journal.empty());
  Cycles LastTs = 0;
  bool SawConsumer = false;
  for (const DecisionRecord &D : R.Journal) {
    EXPECT_GE(D.Ts, LastTs);
    LastTs = D.Ts;
    ASSERT_NE(D.Consumer, nullptr);
    if (D.Consumer == std::string("coalloc") ||
        D.Consumer == std::string("hpm"))
      SawConsumer = true;
  }
  EXPECT_TRUE(SawConsumer);

  // An unmonitored run decides nothing.
  RunResult Base = runExperiment(smallDb(/*Monitoring=*/false));
  EXPECT_TRUE(Base.Journal.empty());
}

TEST(Telemetry, JournalFileExportMatchesRunResult) {
  std::string JournalPath = ::testing::TempDir() + "telemetry_journal.jsonl";
  RunConfig C = smallDb(/*Monitoring=*/true);
  C.Obs.JournalOutPath = JournalPath;
  Experiment E(C);
  E.run();
  RunResult R = E.result();

  std::string Text = slurp(JournalPath);
  remove(JournalPath.c_str());
  size_t Lines = 0;
  for (char Ch : Text)
    Lines += Ch == '\n';
  EXPECT_EQ(Lines, R.Journal.size());
  // Every line is standalone JSON (the jq-ability contract).
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    bool Ok = false;
    auto V = json::parse(Text.substr(Pos, End - Pos), Ok);
    ASSERT_TRUE(Ok);
    EXPECT_FALSE(V->str("kind").empty());
    Pos = End + 1;
  }
}

TEST(Telemetry, SelfProfilePopulatesStageHistogramsAndOverheadGauge) {
  RunConfig C = smallDb(/*Monitoring=*/true);
  C.Obs.SelfProfile = true;
  RunResult R = runExperiment(C);
  const MetricsSnapshot &M = R.Metrics;
  for (const char *Name :
       {"pipeline.stage.drain_ns", "pipeline.stage.resolve_ns",
        "pipeline.stage.attribute_ns", "pipeline.stage.dispatch_ns"}) {
    const MetricsSnapshot::HistogramData *H = M.histogram(Name);
    ASSERT_NE(H, nullptr) << Name;
    EXPECT_GT(H->Count, 0u) << Name;
    EXPECT_GE(H->P99, H->P50) << Name;
  }
  // The gauge exists (it may legitimately read 0 ppm on a fast machine).
  bool Found = false;
  for (const auto &[Name, V] : M.Gauges)
    Found |= Name == "monitor.self_overhead_frac_ppm";
  EXPECT_TRUE(Found);
}

TEST(Telemetry, SelfProfileOffKeepsMetricsClean) {
  RunResult R = runExperiment(smallDb(/*Monitoring=*/true));
  for (const auto &H : R.Metrics.Histograms)
    EXPECT_EQ(H.Name.rfind("pipeline.stage.", 0), std::string::npos);
  EXPECT_EQ(R.Metrics.gauge("monitor.self_overhead_frac_ppm"), 0u);
}

TEST(Telemetry, InstrumentationDoesNotChangeResults) {
  // Two identical monitored runs, one with a tiny trace buffer forcing
  // wraparound: telemetry must never perturb the simulation.
  RunConfig A = smallDb(/*Monitoring=*/true);
  RunConfig B = A;
  B.Obs.TraceCapacity = 16;
  RunResult Ra = runExperiment(A);
  RunResult Rb = runExperiment(B);
  EXPECT_EQ(Ra.TotalCycles, Rb.TotalCycles);
  EXPECT_EQ(Ra.Gc.MinorCollections, Rb.Gc.MinorCollections);
  EXPECT_EQ(Ra.SamplesTaken, Rb.SamplesTaken);
  EXPECT_EQ(Ra.Memory.L1Misses, Rb.Memory.L1Misses);
}
