//===-- tests/integration/EndToEndTest.cpp --------------------------------===//
//
// The paper's headline claims, end to end on the db workload:
//   1. the monitoring pipeline attributes samples to reference fields,
//      with Record::value the hottest (the String::value analogue);
//   2. the GC co-allocates guided by those counts;
//   3. L1 misses and execution time drop relative to the baseline;
//   4. GenMS+coalloc beats GenCopy on db.
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include <gtest/gtest.h>

#include <string_view>

using namespace hpmvm;

namespace {

RunConfig dbConfig() {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = 40;
  C.Params.Seed = 11;
  C.HeapFactor = 4.0;
  return C;
}

TEST(EndToEnd, MonitoringAttributesMissesToHotField) {
  RunConfig C = dbConfig();
  C.Monitoring = true;
  C.Coallocation = false;
  C.Monitor.SamplingInterval = 10000;

  Experiment E(C);
  E.run();

  HpmMonitor *M = E.monitor();
  ASSERT_NE(M, nullptr);
  EXPECT_GT(M->pebs().samplesTaken(), 20u);
  EXPECT_GT(M->stats().SamplesAttributed, 10u);

  // Record::value must dominate the per-field miss ranking for dbRecord.
  const ClassRegistry &Reg = E.vm().classes();
  FieldId Value = kInvalidId;
  for (size_t F = 0; F != Reg.numFields(); ++F)
    if (std::string_view(Reg.field(F).Name) == "dbRecord::value")
      Value = static_cast<FieldId>(F);
  ASSERT_NE(Value, kInvalidId);
  uint64_t ValueMisses = M->missTable().misses(Value);
  EXPECT_GT(ValueMisses, 5u);
  EXPECT_GT(ValueMisses * 2, M->missTable().totalMisses())
      << "Record::value should account for most attributed misses";
}

TEST(EndToEnd, CoallocationReducesL1MissesAndTime) {
  RunConfig Base = dbConfig();
  RunResult Baseline = runExperiment(Base);

  RunConfig Opt = dbConfig();
  Opt.Monitoring = true;
  Opt.Coallocation = true;
  Opt.Monitor.SamplingInterval = 10000;
  RunResult Coalloc = runExperiment(Opt);

  EXPECT_GT(Coalloc.CoallocatedPairs, 1000u);

  double MissRatio = static_cast<double>(Coalloc.Memory.L1Misses) /
                     static_cast<double>(Baseline.Memory.L1Misses);
  double TimeRatio = static_cast<double>(Coalloc.TotalCycles) /
                     static_cast<double>(Baseline.TotalCycles);
  // The paper: up to 28% fewer L1 misses, up to 13.9% faster. Require a
  // clear win without pinning exact magnitudes.
  EXPECT_LT(MissRatio, 0.95) << "co-allocation must cut L1 misses on db";
  EXPECT_LT(TimeRatio, 1.00) << "co-allocation must speed db up";
}

TEST(EndToEnd, GenMSCoallocBeatsGenCopyOnDb) {
  RunConfig Copy = dbConfig();
  Copy.Collector = CollectorKind::GenCopy;
  RunResult CopyR = runExperiment(Copy);

  RunConfig Opt = dbConfig();
  Opt.Monitoring = true;
  Opt.Coallocation = true;
  Opt.Monitor.SamplingInterval = 10000;
  RunResult Coalloc = runExperiment(Opt);

  EXPECT_LT(Coalloc.TotalCycles, CopyR.TotalCycles)
      << "paper: GenMS + co-allocation outperforms GenCopy throughout";
}

TEST(EndToEnd, StreamWorkloadsHaveNoCoallocationCandidates) {
  for (const char *Name : {"compress", "mpegaudio"}) {
    RunConfig C;
    C.Workload = Name;
    C.Params.ScalePercent = 30;
    C.HeapFactor = 4.0;
    C.Monitoring = true;
    C.Coallocation = true;
    C.Monitor.SamplingInterval = 5000;
    RunResult R = runExperiment(C);
    EXPECT_EQ(R.CoallocatedPairs, 0u) << Name;
  }
}

} // namespace

#include "gc/HeapVerifier.h"

namespace {

TEST(EndToEnd, HeapStaysWellFormedUnderCoallocation) {
  // Full-pipeline run, then a structural audit of the resulting heap:
  // headers, cell sharing, reference integrity, remembered-set soundness.
  RunConfig C = dbConfig();
  C.Monitoring = true;
  C.Coallocation = true;
  C.Monitor.SamplingInterval = 10000;
  Experiment E(C);
  E.run();
  ASSERT_GT(E.collector().stats().ObjectsCoallocated, 0u);
  auto *Plan = dynamic_cast<GenMSPlan *>(&E.collector());
  ASSERT_NE(Plan, nullptr);
  EXPECT_EQ(HeapVerifier::verify(*Plan, E.vm().objects()), "");

  HeapCensus Census = HeapVerifier::census(*Plan, E.vm().objects());
  EXPECT_GT(Census.CoallocatedCells, 0u);
  EXPECT_GT(Census.totalObjects(), 1000u);
}

} // namespace
