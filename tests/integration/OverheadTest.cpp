//===-- tests/integration/OverheadTest.cpp --------------------------------===//
//
// Figure 2's properties: monitoring overhead is small, shrinks with larger
// sampling intervals, and the sample counts scale ~inversely with the
// interval.
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

RunResult runDbAtInterval(uint64_t Interval) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = 30;
  C.Params.Seed = 5;
  C.HeapFactor = 4.0;
  C.Monitoring = true;
  C.Coallocation = false;
  C.Monitor.SamplingInterval = Interval;
  return runExperiment(C);
}

TEST(Overhead, ShrinksWithLargerInterval) {
  RunResult R25 = runDbAtInterval(25000);
  RunResult R100 = runDbAtInterval(100000);

  EXPECT_GT(R25.SamplesTaken, R100.SamplesTaken);
  EXPECT_GT(R25.MonitorOverheadCycles, R100.MonitorOverheadCycles);

  // Sample counts ~ total events / interval: the 25K run should take
  // roughly 4x the samples of the 100K run (loose band: randomized low
  // bits and end-of-run truncation blur it).
  double Ratio = static_cast<double>(R25.SamplesTaken) /
                 static_cast<double>(R100.SamplesTaken ? R100.SamplesTaken
                                                       : 1);
  EXPECT_GT(Ratio, 2.0);
  EXPECT_LT(Ratio, 8.0);
}

TEST(Overhead, StaysSmallFractionOfRuntime) {
  RunResult Base = [] {
    RunConfig C;
    C.Workload = "db";
    C.Params.ScalePercent = 30;
    C.Params.Seed = 5;
    C.HeapFactor = 4.0;
    return runExperiment(C);
  }();
  RunResult R100 = runDbAtInterval(100000);

  // Overhead at the paper's largest interval stays in the ~1% regime.
  double Overhead = static_cast<double>(R100.TotalCycles) /
                        static_cast<double>(Base.TotalCycles) -
                    1.0;
  EXPECT_LT(Overhead, 0.03);
  EXPECT_GT(Overhead, -0.005); // Monitoring can never make it faster.
}

TEST(Overhead, AutoIntervalConvergesTowardTarget) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = 40;
  C.Params.Seed = 5;
  C.HeapFactor = 4.0;
  C.Monitoring = true;
  C.Monitor.AutoInterval = true;
  // Scaled target (see DESIGN.md section 6): our runs last ~tens of
  // virtual milliseconds, so the paper's 200/s would yield ~no samples.
  C.Monitor.TargetSamplesPerSec = 20000;
  C.Monitor.SamplingInterval = 500000; // Deliberately far-off start.

  Experiment E(C);
  E.run();
  HpmMonitor *M = E.monitor();
  ASSERT_NE(M, nullptr);
  // The controller must have adjusted the interval downward from the
  // far-off start to chase the target rate.
  EXPECT_LT(M->pebs().interval(), 500000u);
  EXPECT_GT(M->pebs().samplesTaken(), 30u);
}

} // namespace
