//===-- tests/integration/WorkloadSmokeTest.cpp ---------------------------===//
//
// Every benchmark program must build, verify, and run to completion on
// both collectors at a small scale, allocating real objects and surviving
// its garbage collections.
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

struct SmokeCase {
  const char *Workload;
  CollectorKind Collector;
};

std::string smokeName(const testing::TestParamInfo<SmokeCase> &Info) {
  return std::string(Info.param.Workload) + "_" +
         (Info.param.Collector == CollectorKind::GenMS ? "GenMS" : "GenCopy");
}

class WorkloadSmokeTest : public testing::TestWithParam<SmokeCase> {};

TEST_P(WorkloadSmokeTest, RunsToCompletion) {
  RunConfig C;
  C.Workload = GetParam().Workload;
  C.Collector = GetParam().Collector;
  C.Params.ScalePercent = 20;
  C.Params.Seed = 7;
  C.HeapFactor = 4.0;

  RunResult R = runExperiment(C);
  EXPECT_GT(R.TotalCycles, 0u);
  // Stream workloads allocate few (huge) arrays; everything else many.
  EXPECT_GE(R.Vm.ObjectsAllocated, 2u);
  EXPECT_GT(R.Vm.BytesAllocated, 64u * 1024);
  EXPECT_GT(R.Memory.Accesses, 1000u);
  EXPECT_EQ(R.Vm.Traps, 0u);
  // Pseudo-adaptive mode compiled the plan.
  EXPECT_GT(R.Vm.MethodsOptCompiled, 0u);
}

std::vector<SmokeCase> allCases() {
  std::vector<SmokeCase> Cases;
  for (const WorkloadSpec &S : allWorkloads()) {
    Cases.push_back({S.Name.c_str(), CollectorKind::GenMS});
    Cases.push_back({S.Name.c_str(), CollectorKind::GenCopy});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSmokeTest,
                         testing::ValuesIn(allCases()), smokeName);

// Each workload must also survive at its declared minimum heap (1x) --
// this validates the MinHeapBytes table used by the heap-size sweeps.
class MinHeapTest : public testing::TestWithParam<SmokeCase> {};

TEST_P(MinHeapTest, RunsAtMinimumHeap) {
  RunConfig C;
  C.Workload = GetParam().Workload;
  C.Collector = GetParam().Collector;
  C.Params.ScalePercent = 20;
  C.Params.Seed = 7;
  C.HeapFactor = 1.0;

  RunResult R = runExperiment(C);
  EXPECT_EQ(R.Vm.Traps, 0u);
  EXPECT_GT(R.TotalCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MinHeapTest,
                         testing::ValuesIn(allCases()), smokeName);

} // namespace

namespace {

// At 20% scale the 2 MB floor masks the per-workload minimum-heap values;
// validate the heaviest programs at full scale and 1x heap on both
// collectors (GenCopy needs the copy reserve, making it the binding
// constraint).
class FullScaleMinHeapTest : public testing::TestWithParam<SmokeCase> {};

TEST_P(FullScaleMinHeapTest, RunsAtFullScaleMinimumHeap) {
  RunConfig C;
  C.Workload = GetParam().Workload;
  C.Collector = GetParam().Collector;
  C.Params.ScalePercent = 100;
  C.Params.Seed = 3;
  C.HeapFactor = 1.0;
  RunResult R = runExperiment(C);
  EXPECT_EQ(R.Vm.Traps, 0u);
  EXPECT_GT(R.Gc.MinorCollections + R.Gc.MajorCollections, 0u)
      << "a 1x-heap full-scale run must actually collect";
}

std::vector<SmokeCase> heavyCases() {
  std::vector<SmokeCase> Cases;
  for (const char *Name : {"db", "hsqldb", "pseudojbb", "luindex", "mtrt",
                           "lusearch", "bloat"}) {
    Cases.push_back({Name, CollectorKind::GenMS});
    Cases.push_back({Name, CollectorKind::GenCopy});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(HeavyWorkloads, FullScaleMinHeapTest,
                         testing::ValuesIn(heavyCases()), smokeName);

} // namespace
