//===-- tests/integration/WorkloadCharacteristicsTest.cpp -----------------===//
//
// Demographic guards: the figures' shapes depend on each synthetic
// workload reproducing specific properties of its original (allocation
// churn, survival, large-object usage, co-allocation candidacy). These
// tests pin those properties so a parameter tweak cannot silently undo
// the evaluation's preconditions.
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include <gtest/gtest.h>

using namespace hpmvm;

namespace {

RunResult runBaseline(const char *Name, uint32_t Scale = 50) {
  RunConfig C;
  C.Workload = Name;
  C.Params.ScalePercent = Scale;
  C.Params.Seed = 42;
  C.HeapFactor = 4.0;
  return runExperiment(C);
}

} // namespace

TEST(WorkloadCharacteristics, StreamProgramsNeverCollect) {
  // compress/mpegaudio keep all significant data in large arrays; with no
  // small-object churn the nursery never fills -- which is exactly why
  // Figure 3 shows zero co-allocation candidates for them.
  for (const char *Name : {"compress", "mpegaudio"}) {
    RunResult R = runBaseline(Name);
    EXPECT_EQ(R.Gc.MinorCollections + R.Gc.MajorCollections, 0u) << Name;
    EXPECT_LT(R.Vm.ObjectsAllocated, 100u) << Name;
  }
}

TEST(WorkloadCharacteristics, ChurnyProgramsCollectAndPromote) {
  // The co-allocation experiments need real generational behaviour:
  // collections during the run and a substantial promoted population.
  for (const char *Name : {"jess", "db", "mtrt", "pseudojbb", "bloat",
                           "hsqldb", "jython", "luindex", "lusearch",
                           "pmd", "javac"}) {
    RunResult R = runBaseline(Name);
    EXPECT_GE(R.Gc.MinorCollections + R.Gc.MajorCollections, 1u) << Name;
    EXPECT_GE(R.Gc.ObjectsPromoted, 5000u) << Name;
  }
}

TEST(WorkloadCharacteristics, AllocationVolumeDwarfsTheLiveSet) {
  // Java programs allocate many times their live set; the kernels bake
  // that in via transient temporaries in the hot loops (DESIGN.md sec. 6).
  for (const char *Name : {"db", "jess", "hsqldb", "lusearch"}) {
    RunResult R = runBaseline(Name);
    EXPECT_GT(R.Vm.BytesAllocated, static_cast<uint64_t>(R.HeapBytes))
        << Name << ": must allocate more than the whole 4x heap";
  }
}

TEST(WorkloadCharacteristics, DbIsMemoryBound) {
  // The headline program must actually stress the memory hierarchy: an L1
  // miss every few dozen accesses and a working set beyond L2.
  RunResult R = runBaseline("db");
  double MissRate = static_cast<double>(R.Memory.L1Misses) /
                    static_cast<double>(R.Memory.Accesses);
  EXPECT_GT(MissRate, 0.005);
  EXPECT_LT(MissRate, 0.5);
  EXPECT_GT(R.Memory.L2Misses, R.Memory.L1Misses / 100)
      << "the live set must exceed L2 for part of the run";
}

TEST(WorkloadCharacteristics, PseudojbbPayloadsExceedACacheLine) {
  // pseudojbb's defining property: co-allocated children larger than one
  // 128-byte line (20 longs = 160 B body), which is why its many pairs
  // yield little cache benefit. Verify via the ablation knob: a 128-byte
  // pair ceiling must kill most of its pairs.
  RunConfig C;
  C.Workload = "pseudojbb";
  C.Params.ScalePercent = 50;
  C.HeapFactor = 4.0;
  C.Monitoring = true;
  C.Coallocation = true;
  C.Monitor.SamplingInterval = 5000;
  RunResult Full = runExperiment(C);
  C.MaxCoallocPairBytes = 128;
  RunResult Capped = runExperiment(C);
  ASSERT_GT(Full.CoallocatedPairs, 0u);
  EXPECT_LT(Capped.CoallocatedPairs, Full.CoallocatedPairs / 2)
      << "most jbb pairs must exceed one cache line";
}

TEST(WorkloadCharacteristics, DeterministicAcrossRuns) {
  // Same seed, same everything: the whole simulation must be bit-stable.
  RunResult A = runBaseline("db", 30);
  RunResult B = runBaseline("db", 30);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.Memory.L1Misses, B.Memory.L1Misses);
  EXPECT_EQ(A.Gc.ObjectsPromoted, B.Gc.ObjectsPromoted);
}

TEST(WorkloadCharacteristics, SeedChangesTheRun) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = 30;
  C.HeapFactor = 4.0;
  C.Params.Seed = 1;
  RunResult A = runExperiment(C);
  C.Params.Seed = 2;
  RunResult B = runExperiment(C);
  EXPECT_NE(A.Memory.L1Misses, B.Memory.L1Misses);
}
