# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/hpm_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
