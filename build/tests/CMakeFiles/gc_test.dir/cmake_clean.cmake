file(REMOVE_RECURSE
  "CMakeFiles/gc_test.dir/gc/CoallocationTest.cpp.o"
  "CMakeFiles/gc_test.dir/gc/CoallocationTest.cpp.o.d"
  "CMakeFiles/gc_test.dir/gc/GcPropertyTest.cpp.o"
  "CMakeFiles/gc_test.dir/gc/GcPropertyTest.cpp.o.d"
  "CMakeFiles/gc_test.dir/gc/GenCopyTest.cpp.o"
  "CMakeFiles/gc_test.dir/gc/GenCopyTest.cpp.o.d"
  "CMakeFiles/gc_test.dir/gc/GenMSTest.cpp.o"
  "CMakeFiles/gc_test.dir/gc/GenMSTest.cpp.o.d"
  "CMakeFiles/gc_test.dir/gc/HeapVerifierTest.cpp.o"
  "CMakeFiles/gc_test.dir/gc/HeapVerifierTest.cpp.o.d"
  "CMakeFiles/gc_test.dir/gc/RememberedSetTest.cpp.o"
  "CMakeFiles/gc_test.dir/gc/RememberedSetTest.cpp.o.d"
  "gc_test"
  "gc_test.pdb"
  "gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
