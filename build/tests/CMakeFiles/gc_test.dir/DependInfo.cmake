
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gc/CoallocationTest.cpp" "tests/CMakeFiles/gc_test.dir/gc/CoallocationTest.cpp.o" "gcc" "tests/CMakeFiles/gc_test.dir/gc/CoallocationTest.cpp.o.d"
  "/root/repo/tests/gc/GcPropertyTest.cpp" "tests/CMakeFiles/gc_test.dir/gc/GcPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/gc_test.dir/gc/GcPropertyTest.cpp.o.d"
  "/root/repo/tests/gc/GenCopyTest.cpp" "tests/CMakeFiles/gc_test.dir/gc/GenCopyTest.cpp.o" "gcc" "tests/CMakeFiles/gc_test.dir/gc/GenCopyTest.cpp.o.d"
  "/root/repo/tests/gc/GenMSTest.cpp" "tests/CMakeFiles/gc_test.dir/gc/GenMSTest.cpp.o" "gcc" "tests/CMakeFiles/gc_test.dir/gc/GenMSTest.cpp.o.d"
  "/root/repo/tests/gc/HeapVerifierTest.cpp" "tests/CMakeFiles/gc_test.dir/gc/HeapVerifierTest.cpp.o" "gcc" "tests/CMakeFiles/gc_test.dir/gc/HeapVerifierTest.cpp.o.d"
  "/root/repo/tests/gc/RememberedSetTest.cpp" "tests/CMakeFiles/gc_test.dir/gc/RememberedSetTest.cpp.o" "gcc" "tests/CMakeFiles/gc_test.dir/gc/RememberedSetTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
