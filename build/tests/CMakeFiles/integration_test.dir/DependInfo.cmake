
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/EndToEndTest.cpp" "tests/CMakeFiles/integration_test.dir/integration/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/EndToEndTest.cpp.o.d"
  "/root/repo/tests/integration/OverheadTest.cpp" "tests/CMakeFiles/integration_test.dir/integration/OverheadTest.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/OverheadTest.cpp.o.d"
  "/root/repo/tests/integration/WorkloadCharacteristicsTest.cpp" "tests/CMakeFiles/integration_test.dir/integration/WorkloadCharacteristicsTest.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/WorkloadCharacteristicsTest.cpp.o.d"
  "/root/repo/tests/integration/WorkloadSmokeTest.cpp" "tests/CMakeFiles/integration_test.dir/integration/WorkloadSmokeTest.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/WorkloadSmokeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
