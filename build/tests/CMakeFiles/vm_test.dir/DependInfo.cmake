
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/AosTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/AosTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/AosTest.cpp.o.d"
  "/root/repo/tests/vm/BytecodeBuilderTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/BytecodeBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/BytecodeBuilderTest.cpp.o.d"
  "/root/repo/tests/vm/ClassRegistryTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/ClassRegistryTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/ClassRegistryTest.cpp.o.d"
  "/root/repo/tests/vm/DisassemblerTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/DisassemblerTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/DisassemblerTest.cpp.o.d"
  "/root/repo/tests/vm/InterpreterCompilerEquivalenceTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/InterpreterCompilerEquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/InterpreterCompilerEquivalenceTest.cpp.o.d"
  "/root/repo/tests/vm/InterpreterTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/InterpreterTest.cpp.o.d"
  "/root/repo/tests/vm/MachineExecutorTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/MachineExecutorTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/MachineExecutorTest.cpp.o.d"
  "/root/repo/tests/vm/MethodTableTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/MethodTableTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/MethodTableTest.cpp.o.d"
  "/root/repo/tests/vm/OptCompilerTest.cpp" "tests/CMakeFiles/vm_test.dir/vm/OptCompilerTest.cpp.o" "gcc" "tests/CMakeFiles/vm_test.dir/vm/OptCompilerTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
