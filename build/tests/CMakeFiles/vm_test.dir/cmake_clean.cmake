file(REMOVE_RECURSE
  "CMakeFiles/vm_test.dir/vm/AosTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/AosTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/BytecodeBuilderTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/BytecodeBuilderTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/ClassRegistryTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/ClassRegistryTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/DisassemblerTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/DisassemblerTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/InterpreterCompilerEquivalenceTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/InterpreterCompilerEquivalenceTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/InterpreterTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/InterpreterTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/MachineExecutorTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/MachineExecutorTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/MethodTableTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/MethodTableTest.cpp.o.d"
  "CMakeFiles/vm_test.dir/vm/OptCompilerTest.cpp.o"
  "CMakeFiles/vm_test.dir/vm/OptCompilerTest.cpp.o.d"
  "vm_test"
  "vm_test.pdb"
  "vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
