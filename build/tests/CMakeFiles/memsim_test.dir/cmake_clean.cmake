file(REMOVE_RECURSE
  "CMakeFiles/memsim_test.dir/memsim/CacheTest.cpp.o"
  "CMakeFiles/memsim_test.dir/memsim/CacheTest.cpp.o.d"
  "CMakeFiles/memsim_test.dir/memsim/MemoryHierarchyTest.cpp.o"
  "CMakeFiles/memsim_test.dir/memsim/MemoryHierarchyTest.cpp.o.d"
  "CMakeFiles/memsim_test.dir/memsim/TlbTest.cpp.o"
  "CMakeFiles/memsim_test.dir/memsim/TlbTest.cpp.o.d"
  "memsim_test"
  "memsim_test.pdb"
  "memsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
