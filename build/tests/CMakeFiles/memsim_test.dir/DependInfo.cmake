
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memsim/CacheTest.cpp" "tests/CMakeFiles/memsim_test.dir/memsim/CacheTest.cpp.o" "gcc" "tests/CMakeFiles/memsim_test.dir/memsim/CacheTest.cpp.o.d"
  "/root/repo/tests/memsim/MemoryHierarchyTest.cpp" "tests/CMakeFiles/memsim_test.dir/memsim/MemoryHierarchyTest.cpp.o" "gcc" "tests/CMakeFiles/memsim_test.dir/memsim/MemoryHierarchyTest.cpp.o.d"
  "/root/repo/tests/memsim/TlbTest.cpp" "tests/CMakeFiles/memsim_test.dir/memsim/TlbTest.cpp.o" "gcc" "tests/CMakeFiles/memsim_test.dir/memsim/TlbTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
