file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/CoallocationAdvisorTest.cpp.o"
  "CMakeFiles/core_test.dir/core/CoallocationAdvisorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/FieldMissTableTest.cpp.o"
  "CMakeFiles/core_test.dir/core/FieldMissTableTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/FrequencyAdvisorTest.cpp.o"
  "CMakeFiles/core_test.dir/core/FrequencyAdvisorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/HpmMonitorTest.cpp.o"
  "CMakeFiles/core_test.dir/core/HpmMonitorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/InterestAnalysisTest.cpp.o"
  "CMakeFiles/core_test.dir/core/InterestAnalysisTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/OptimizationControllerTest.cpp.o"
  "CMakeFiles/core_test.dir/core/OptimizationControllerTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/PhaseDetectorTest.cpp.o"
  "CMakeFiles/core_test.dir/core/PhaseDetectorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/PrefetchInjectorTest.cpp.o"
  "CMakeFiles/core_test.dir/core/PrefetchInjectorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/SampleResolverTest.cpp.o"
  "CMakeFiles/core_test.dir/core/SampleResolverTest.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
