
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/CoallocationAdvisorTest.cpp" "tests/CMakeFiles/core_test.dir/core/CoallocationAdvisorTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/CoallocationAdvisorTest.cpp.o.d"
  "/root/repo/tests/core/FieldMissTableTest.cpp" "tests/CMakeFiles/core_test.dir/core/FieldMissTableTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/FieldMissTableTest.cpp.o.d"
  "/root/repo/tests/core/FrequencyAdvisorTest.cpp" "tests/CMakeFiles/core_test.dir/core/FrequencyAdvisorTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/FrequencyAdvisorTest.cpp.o.d"
  "/root/repo/tests/core/HpmMonitorTest.cpp" "tests/CMakeFiles/core_test.dir/core/HpmMonitorTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/HpmMonitorTest.cpp.o.d"
  "/root/repo/tests/core/InterestAnalysisTest.cpp" "tests/CMakeFiles/core_test.dir/core/InterestAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/InterestAnalysisTest.cpp.o.d"
  "/root/repo/tests/core/OptimizationControllerTest.cpp" "tests/CMakeFiles/core_test.dir/core/OptimizationControllerTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/OptimizationControllerTest.cpp.o.d"
  "/root/repo/tests/core/PhaseDetectorTest.cpp" "tests/CMakeFiles/core_test.dir/core/PhaseDetectorTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/PhaseDetectorTest.cpp.o.d"
  "/root/repo/tests/core/PrefetchInjectorTest.cpp" "tests/CMakeFiles/core_test.dir/core/PrefetchInjectorTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/PrefetchInjectorTest.cpp.o.d"
  "/root/repo/tests/core/SampleResolverTest.cpp" "tests/CMakeFiles/core_test.dir/core/SampleResolverTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/SampleResolverTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
