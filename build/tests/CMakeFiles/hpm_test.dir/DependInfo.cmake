
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hpm/EventMultiplexerTest.cpp" "tests/CMakeFiles/hpm_test.dir/hpm/EventMultiplexerTest.cpp.o" "gcc" "tests/CMakeFiles/hpm_test.dir/hpm/EventMultiplexerTest.cpp.o.d"
  "/root/repo/tests/hpm/NativeSampleLibraryTest.cpp" "tests/CMakeFiles/hpm_test.dir/hpm/NativeSampleLibraryTest.cpp.o" "gcc" "tests/CMakeFiles/hpm_test.dir/hpm/NativeSampleLibraryTest.cpp.o.d"
  "/root/repo/tests/hpm/PebsUnitTest.cpp" "tests/CMakeFiles/hpm_test.dir/hpm/PebsUnitTest.cpp.o" "gcc" "tests/CMakeFiles/hpm_test.dir/hpm/PebsUnitTest.cpp.o.d"
  "/root/repo/tests/hpm/PerfmonModuleTest.cpp" "tests/CMakeFiles/hpm_test.dir/hpm/PerfmonModuleTest.cpp.o" "gcc" "tests/CMakeFiles/hpm_test.dir/hpm/PerfmonModuleTest.cpp.o.d"
  "/root/repo/tests/hpm/SampleCollectorTest.cpp" "tests/CMakeFiles/hpm_test.dir/hpm/SampleCollectorTest.cpp.o" "gcc" "tests/CMakeFiles/hpm_test.dir/hpm/SampleCollectorTest.cpp.o.d"
  "/root/repo/tests/hpm/SamplingIntervalControllerTest.cpp" "tests/CMakeFiles/hpm_test.dir/hpm/SamplingIntervalControllerTest.cpp.o" "gcc" "tests/CMakeFiles/hpm_test.dir/hpm/SamplingIntervalControllerTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
