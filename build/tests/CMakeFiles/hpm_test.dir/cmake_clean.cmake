file(REMOVE_RECURSE
  "CMakeFiles/hpm_test.dir/hpm/EventMultiplexerTest.cpp.o"
  "CMakeFiles/hpm_test.dir/hpm/EventMultiplexerTest.cpp.o.d"
  "CMakeFiles/hpm_test.dir/hpm/NativeSampleLibraryTest.cpp.o"
  "CMakeFiles/hpm_test.dir/hpm/NativeSampleLibraryTest.cpp.o.d"
  "CMakeFiles/hpm_test.dir/hpm/PebsUnitTest.cpp.o"
  "CMakeFiles/hpm_test.dir/hpm/PebsUnitTest.cpp.o.d"
  "CMakeFiles/hpm_test.dir/hpm/PerfmonModuleTest.cpp.o"
  "CMakeFiles/hpm_test.dir/hpm/PerfmonModuleTest.cpp.o.d"
  "CMakeFiles/hpm_test.dir/hpm/SampleCollectorTest.cpp.o"
  "CMakeFiles/hpm_test.dir/hpm/SampleCollectorTest.cpp.o.d"
  "CMakeFiles/hpm_test.dir/hpm/SamplingIntervalControllerTest.cpp.o"
  "CMakeFiles/hpm_test.dir/hpm/SamplingIntervalControllerTest.cpp.o.d"
  "hpm_test"
  "hpm_test.pdb"
  "hpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
