
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/FormatTest.cpp" "tests/CMakeFiles/support_test.dir/support/FormatTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support/FormatTest.cpp.o.d"
  "/root/repo/tests/support/RandomTest.cpp" "tests/CMakeFiles/support_test.dir/support/RandomTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support/RandomTest.cpp.o.d"
  "/root/repo/tests/support/StatisticsTest.cpp" "tests/CMakeFiles/support_test.dir/support/StatisticsTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support/StatisticsTest.cpp.o.d"
  "/root/repo/tests/support/TableWriterTest.cpp" "tests/CMakeFiles/support_test.dir/support/TableWriterTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support/TableWriterTest.cpp.o.d"
  "/root/repo/tests/support/VirtualClockTest.cpp" "tests/CMakeFiles/support_test.dir/support/VirtualClockTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support/VirtualClockTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
