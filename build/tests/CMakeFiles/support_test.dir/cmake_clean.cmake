file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/support/FormatTest.cpp.o"
  "CMakeFiles/support_test.dir/support/FormatTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/RandomTest.cpp.o"
  "CMakeFiles/support_test.dir/support/RandomTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/StatisticsTest.cpp.o"
  "CMakeFiles/support_test.dir/support/StatisticsTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/TableWriterTest.cpp.o"
  "CMakeFiles/support_test.dir/support/TableWriterTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/VirtualClockTest.cpp.o"
  "CMakeFiles/support_test.dir/support/VirtualClockTest.cpp.o.d"
  "support_test"
  "support_test.pdb"
  "support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
