
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/heap/AllocatorTest.cpp" "tests/CMakeFiles/heap_test.dir/heap/AllocatorTest.cpp.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap/AllocatorTest.cpp.o.d"
  "/root/repo/tests/heap/BlockPoolTest.cpp" "tests/CMakeFiles/heap_test.dir/heap/BlockPoolTest.cpp.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap/BlockPoolTest.cpp.o.d"
  "/root/repo/tests/heap/FreeListAllocatorTest.cpp" "tests/CMakeFiles/heap_test.dir/heap/FreeListAllocatorTest.cpp.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap/FreeListAllocatorTest.cpp.o.d"
  "/root/repo/tests/heap/LargeObjectSpaceTest.cpp" "tests/CMakeFiles/heap_test.dir/heap/LargeObjectSpaceTest.cpp.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap/LargeObjectSpaceTest.cpp.o.d"
  "/root/repo/tests/heap/ObjectModelTest.cpp" "tests/CMakeFiles/heap_test.dir/heap/ObjectModelTest.cpp.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap/ObjectModelTest.cpp.o.d"
  "/root/repo/tests/heap/SizeClassesTest.cpp" "tests/CMakeFiles/heap_test.dir/heap/SizeClassesTest.cpp.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap/SizeClassesTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
