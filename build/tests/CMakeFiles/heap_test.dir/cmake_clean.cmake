file(REMOVE_RECURSE
  "CMakeFiles/heap_test.dir/heap/AllocatorTest.cpp.o"
  "CMakeFiles/heap_test.dir/heap/AllocatorTest.cpp.o.d"
  "CMakeFiles/heap_test.dir/heap/BlockPoolTest.cpp.o"
  "CMakeFiles/heap_test.dir/heap/BlockPoolTest.cpp.o.d"
  "CMakeFiles/heap_test.dir/heap/FreeListAllocatorTest.cpp.o"
  "CMakeFiles/heap_test.dir/heap/FreeListAllocatorTest.cpp.o.d"
  "CMakeFiles/heap_test.dir/heap/LargeObjectSpaceTest.cpp.o"
  "CMakeFiles/heap_test.dir/heap/LargeObjectSpaceTest.cpp.o.d"
  "CMakeFiles/heap_test.dir/heap/ObjectModelTest.cpp.o"
  "CMakeFiles/heap_test.dir/heap/ObjectModelTest.cpp.o.d"
  "CMakeFiles/heap_test.dir/heap/SizeClassesTest.cpp.o"
  "CMakeFiles/heap_test.dir/heap/SizeClassesTest.cpp.o.d"
  "heap_test"
  "heap_test.pdb"
  "heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
