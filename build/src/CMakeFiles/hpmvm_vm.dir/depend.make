# Empty dependencies file for hpmvm_vm.
# This may be replaced when dependencies are built.
