file(REMOVE_RECURSE
  "libhpmvm_vm.a"
)
