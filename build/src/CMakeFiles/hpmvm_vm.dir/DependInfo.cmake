
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/AdaptiveOptimizationSystem.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/AdaptiveOptimizationSystem.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/AdaptiveOptimizationSystem.cpp.o.d"
  "/root/repo/src/vm/Bytecode.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/Bytecode.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/Bytecode.cpp.o.d"
  "/root/repo/src/vm/BytecodeBuilder.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/BytecodeBuilder.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/BytecodeBuilder.cpp.o.d"
  "/root/repo/src/vm/ClassRegistry.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/ClassRegistry.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/ClassRegistry.cpp.o.d"
  "/root/repo/src/vm/Disassembler.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/Disassembler.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/Disassembler.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/Interpreter.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/Interpreter.cpp.o.d"
  "/root/repo/src/vm/MachineCode.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/MachineCode.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/MachineCode.cpp.o.d"
  "/root/repo/src/vm/MachineExecutor.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/MachineExecutor.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/MachineExecutor.cpp.o.d"
  "/root/repo/src/vm/MethodTable.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/MethodTable.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/MethodTable.cpp.o.d"
  "/root/repo/src/vm/OptCompiler.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/OptCompiler.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/OptCompiler.cpp.o.d"
  "/root/repo/src/vm/VirtualMachine.cpp" "src/CMakeFiles/hpmvm_vm.dir/vm/VirtualMachine.cpp.o" "gcc" "src/CMakeFiles/hpmvm_vm.dir/vm/VirtualMachine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
