file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_vm.dir/vm/AdaptiveOptimizationSystem.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/AdaptiveOptimizationSystem.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/Bytecode.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/Bytecode.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/BytecodeBuilder.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/BytecodeBuilder.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/ClassRegistry.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/ClassRegistry.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/Disassembler.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/Disassembler.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/Interpreter.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/Interpreter.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/MachineCode.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/MachineCode.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/MachineExecutor.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/MachineExecutor.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/MethodTable.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/MethodTable.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/OptCompiler.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/OptCompiler.cpp.o.d"
  "CMakeFiles/hpmvm_vm.dir/vm/VirtualMachine.cpp.o"
  "CMakeFiles/hpmvm_vm.dir/vm/VirtualMachine.cpp.o.d"
  "libhpmvm_vm.a"
  "libhpmvm_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
