# Empty compiler generated dependencies file for hpmvm_workloads.
# This may be replaced when dependencies are built.
