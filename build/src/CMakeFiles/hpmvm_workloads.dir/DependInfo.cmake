
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/DaCapo.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/DaCapo.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/DaCapo.cpp.o.d"
  "/root/repo/src/workloads/KernelsChurn.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsChurn.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsChurn.cpp.o.d"
  "/root/repo/src/workloads/KernelsProbe.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsProbe.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsProbe.cpp.o.d"
  "/root/repo/src/workloads/KernelsStreamTree.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsStreamTree.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsStreamTree.cpp.o.d"
  "/root/repo/src/workloads/KernelsTable.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsTable.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/KernelsTable.cpp.o.d"
  "/root/repo/src/workloads/PseudoJbb.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/PseudoJbb.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/PseudoJbb.cpp.o.d"
  "/root/repo/src/workloads/SpecJvm98.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/SpecJvm98.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/SpecJvm98.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/CMakeFiles/hpmvm_workloads.dir/workloads/Workload.cpp.o" "gcc" "src/CMakeFiles/hpmvm_workloads.dir/workloads/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
