file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_workloads.dir/workloads/DaCapo.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/DaCapo.cpp.o.d"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsChurn.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsChurn.cpp.o.d"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsProbe.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsProbe.cpp.o.d"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsStreamTree.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsStreamTree.cpp.o.d"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsTable.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/KernelsTable.cpp.o.d"
  "CMakeFiles/hpmvm_workloads.dir/workloads/PseudoJbb.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/PseudoJbb.cpp.o.d"
  "CMakeFiles/hpmvm_workloads.dir/workloads/SpecJvm98.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/SpecJvm98.cpp.o.d"
  "CMakeFiles/hpmvm_workloads.dir/workloads/Workload.cpp.o"
  "CMakeFiles/hpmvm_workloads.dir/workloads/Workload.cpp.o.d"
  "libhpmvm_workloads.a"
  "libhpmvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
