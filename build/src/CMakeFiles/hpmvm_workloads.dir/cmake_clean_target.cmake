file(REMOVE_RECURSE
  "libhpmvm_workloads.a"
)
