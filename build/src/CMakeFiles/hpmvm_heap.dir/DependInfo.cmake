
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/BlockPool.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/BlockPool.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/BlockPool.cpp.o.d"
  "/root/repo/src/heap/BlockedBumpAllocator.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/BlockedBumpAllocator.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/BlockedBumpAllocator.cpp.o.d"
  "/root/repo/src/heap/BumpAllocator.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/BumpAllocator.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/BumpAllocator.cpp.o.d"
  "/root/repo/src/heap/FreeListAllocator.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/FreeListAllocator.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/FreeListAllocator.cpp.o.d"
  "/root/repo/src/heap/HeapMemory.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/HeapMemory.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/HeapMemory.cpp.o.d"
  "/root/repo/src/heap/ImmortalSpace.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/ImmortalSpace.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/ImmortalSpace.cpp.o.d"
  "/root/repo/src/heap/LargeObjectSpace.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/LargeObjectSpace.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/LargeObjectSpace.cpp.o.d"
  "/root/repo/src/heap/ObjectModel.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/ObjectModel.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/ObjectModel.cpp.o.d"
  "/root/repo/src/heap/SizeClasses.cpp" "src/CMakeFiles/hpmvm_heap.dir/heap/SizeClasses.cpp.o" "gcc" "src/CMakeFiles/hpmvm_heap.dir/heap/SizeClasses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
