file(REMOVE_RECURSE
  "libhpmvm_heap.a"
)
