file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_heap.dir/heap/BlockPool.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/BlockPool.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/BlockedBumpAllocator.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/BlockedBumpAllocator.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/BumpAllocator.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/BumpAllocator.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/FreeListAllocator.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/FreeListAllocator.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/HeapMemory.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/HeapMemory.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/ImmortalSpace.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/ImmortalSpace.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/LargeObjectSpace.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/LargeObjectSpace.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/ObjectModel.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/ObjectModel.cpp.o.d"
  "CMakeFiles/hpmvm_heap.dir/heap/SizeClasses.cpp.o"
  "CMakeFiles/hpmvm_heap.dir/heap/SizeClasses.cpp.o.d"
  "libhpmvm_heap.a"
  "libhpmvm_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
