# Empty dependencies file for hpmvm_heap.
# This may be replaced when dependencies are built.
