# Empty compiler generated dependencies file for hpmvm_core.
# This may be replaced when dependencies are built.
