file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_core.dir/core/CoallocationAdvisor.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/CoallocationAdvisor.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/FieldMissTable.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/FieldMissTable.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/FrequencyAdvisor.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/FrequencyAdvisor.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/HpmMonitor.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/HpmMonitor.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/InterestAnalysis.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/InterestAnalysis.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/OptimizationController.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/OptimizationController.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/PhaseDetector.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/PhaseDetector.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/PrefetchInjector.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/PrefetchInjector.cpp.o.d"
  "CMakeFiles/hpmvm_core.dir/core/SampleResolver.cpp.o"
  "CMakeFiles/hpmvm_core.dir/core/SampleResolver.cpp.o.d"
  "libhpmvm_core.a"
  "libhpmvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
