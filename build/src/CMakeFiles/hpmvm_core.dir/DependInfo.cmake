
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CoallocationAdvisor.cpp" "src/CMakeFiles/hpmvm_core.dir/core/CoallocationAdvisor.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/CoallocationAdvisor.cpp.o.d"
  "/root/repo/src/core/FieldMissTable.cpp" "src/CMakeFiles/hpmvm_core.dir/core/FieldMissTable.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/FieldMissTable.cpp.o.d"
  "/root/repo/src/core/FrequencyAdvisor.cpp" "src/CMakeFiles/hpmvm_core.dir/core/FrequencyAdvisor.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/FrequencyAdvisor.cpp.o.d"
  "/root/repo/src/core/HpmMonitor.cpp" "src/CMakeFiles/hpmvm_core.dir/core/HpmMonitor.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/HpmMonitor.cpp.o.d"
  "/root/repo/src/core/InterestAnalysis.cpp" "src/CMakeFiles/hpmvm_core.dir/core/InterestAnalysis.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/InterestAnalysis.cpp.o.d"
  "/root/repo/src/core/OptimizationController.cpp" "src/CMakeFiles/hpmvm_core.dir/core/OptimizationController.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/OptimizationController.cpp.o.d"
  "/root/repo/src/core/PhaseDetector.cpp" "src/CMakeFiles/hpmvm_core.dir/core/PhaseDetector.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/PhaseDetector.cpp.o.d"
  "/root/repo/src/core/PrefetchInjector.cpp" "src/CMakeFiles/hpmvm_core.dir/core/PrefetchInjector.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/PrefetchInjector.cpp.o.d"
  "/root/repo/src/core/SampleResolver.cpp" "src/CMakeFiles/hpmvm_core.dir/core/SampleResolver.cpp.o" "gcc" "src/CMakeFiles/hpmvm_core.dir/core/SampleResolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
