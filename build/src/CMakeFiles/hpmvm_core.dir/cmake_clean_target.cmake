file(REMOVE_RECURSE
  "libhpmvm_core.a"
)
