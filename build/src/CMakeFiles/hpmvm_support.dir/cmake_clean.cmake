file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_support.dir/support/Format.cpp.o"
  "CMakeFiles/hpmvm_support.dir/support/Format.cpp.o.d"
  "CMakeFiles/hpmvm_support.dir/support/Random.cpp.o"
  "CMakeFiles/hpmvm_support.dir/support/Random.cpp.o.d"
  "CMakeFiles/hpmvm_support.dir/support/Statistics.cpp.o"
  "CMakeFiles/hpmvm_support.dir/support/Statistics.cpp.o.d"
  "CMakeFiles/hpmvm_support.dir/support/TableWriter.cpp.o"
  "CMakeFiles/hpmvm_support.dir/support/TableWriter.cpp.o.d"
  "CMakeFiles/hpmvm_support.dir/support/VirtualClock.cpp.o"
  "CMakeFiles/hpmvm_support.dir/support/VirtualClock.cpp.o.d"
  "libhpmvm_support.a"
  "libhpmvm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
