# Empty compiler generated dependencies file for hpmvm_support.
# This may be replaced when dependencies are built.
