file(REMOVE_RECURSE
  "libhpmvm_support.a"
)
