file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_harness.dir/harness/ExperimentRunner.cpp.o"
  "CMakeFiles/hpmvm_harness.dir/harness/ExperimentRunner.cpp.o.d"
  "libhpmvm_harness.a"
  "libhpmvm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
