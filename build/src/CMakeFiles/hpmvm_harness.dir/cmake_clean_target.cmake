file(REMOVE_RECURSE
  "libhpmvm_harness.a"
)
