# Empty compiler generated dependencies file for hpmvm_harness.
# This may be replaced when dependencies are built.
