file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_hpm.dir/hpm/EventMultiplexer.cpp.o"
  "CMakeFiles/hpmvm_hpm.dir/hpm/EventMultiplexer.cpp.o.d"
  "CMakeFiles/hpmvm_hpm.dir/hpm/NativeSampleLibrary.cpp.o"
  "CMakeFiles/hpmvm_hpm.dir/hpm/NativeSampleLibrary.cpp.o.d"
  "CMakeFiles/hpmvm_hpm.dir/hpm/PebsUnit.cpp.o"
  "CMakeFiles/hpmvm_hpm.dir/hpm/PebsUnit.cpp.o.d"
  "CMakeFiles/hpmvm_hpm.dir/hpm/PerfmonModule.cpp.o"
  "CMakeFiles/hpmvm_hpm.dir/hpm/PerfmonModule.cpp.o.d"
  "CMakeFiles/hpmvm_hpm.dir/hpm/SampleCollector.cpp.o"
  "CMakeFiles/hpmvm_hpm.dir/hpm/SampleCollector.cpp.o.d"
  "CMakeFiles/hpmvm_hpm.dir/hpm/SamplingIntervalController.cpp.o"
  "CMakeFiles/hpmvm_hpm.dir/hpm/SamplingIntervalController.cpp.o.d"
  "libhpmvm_hpm.a"
  "libhpmvm_hpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_hpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
