file(REMOVE_RECURSE
  "libhpmvm_hpm.a"
)
