
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpm/EventMultiplexer.cpp" "src/CMakeFiles/hpmvm_hpm.dir/hpm/EventMultiplexer.cpp.o" "gcc" "src/CMakeFiles/hpmvm_hpm.dir/hpm/EventMultiplexer.cpp.o.d"
  "/root/repo/src/hpm/NativeSampleLibrary.cpp" "src/CMakeFiles/hpmvm_hpm.dir/hpm/NativeSampleLibrary.cpp.o" "gcc" "src/CMakeFiles/hpmvm_hpm.dir/hpm/NativeSampleLibrary.cpp.o.d"
  "/root/repo/src/hpm/PebsUnit.cpp" "src/CMakeFiles/hpmvm_hpm.dir/hpm/PebsUnit.cpp.o" "gcc" "src/CMakeFiles/hpmvm_hpm.dir/hpm/PebsUnit.cpp.o.d"
  "/root/repo/src/hpm/PerfmonModule.cpp" "src/CMakeFiles/hpmvm_hpm.dir/hpm/PerfmonModule.cpp.o" "gcc" "src/CMakeFiles/hpmvm_hpm.dir/hpm/PerfmonModule.cpp.o.d"
  "/root/repo/src/hpm/SampleCollector.cpp" "src/CMakeFiles/hpmvm_hpm.dir/hpm/SampleCollector.cpp.o" "gcc" "src/CMakeFiles/hpmvm_hpm.dir/hpm/SampleCollector.cpp.o.d"
  "/root/repo/src/hpm/SamplingIntervalController.cpp" "src/CMakeFiles/hpmvm_hpm.dir/hpm/SamplingIntervalController.cpp.o" "gcc" "src/CMakeFiles/hpmvm_hpm.dir/hpm/SamplingIntervalController.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
