# Empty dependencies file for hpmvm_hpm.
# This may be replaced when dependencies are built.
