file(REMOVE_RECURSE
  "libhpmvm_memsim.a"
)
