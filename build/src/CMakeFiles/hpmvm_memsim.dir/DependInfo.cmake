
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/Cache.cpp" "src/CMakeFiles/hpmvm_memsim.dir/memsim/Cache.cpp.o" "gcc" "src/CMakeFiles/hpmvm_memsim.dir/memsim/Cache.cpp.o.d"
  "/root/repo/src/memsim/MemoryHierarchy.cpp" "src/CMakeFiles/hpmvm_memsim.dir/memsim/MemoryHierarchy.cpp.o" "gcc" "src/CMakeFiles/hpmvm_memsim.dir/memsim/MemoryHierarchy.cpp.o.d"
  "/root/repo/src/memsim/Tlb.cpp" "src/CMakeFiles/hpmvm_memsim.dir/memsim/Tlb.cpp.o" "gcc" "src/CMakeFiles/hpmvm_memsim.dir/memsim/Tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
