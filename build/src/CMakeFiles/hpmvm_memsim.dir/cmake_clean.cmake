file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_memsim.dir/memsim/Cache.cpp.o"
  "CMakeFiles/hpmvm_memsim.dir/memsim/Cache.cpp.o.d"
  "CMakeFiles/hpmvm_memsim.dir/memsim/MemoryHierarchy.cpp.o"
  "CMakeFiles/hpmvm_memsim.dir/memsim/MemoryHierarchy.cpp.o.d"
  "CMakeFiles/hpmvm_memsim.dir/memsim/Tlb.cpp.o"
  "CMakeFiles/hpmvm_memsim.dir/memsim/Tlb.cpp.o.d"
  "libhpmvm_memsim.a"
  "libhpmvm_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
