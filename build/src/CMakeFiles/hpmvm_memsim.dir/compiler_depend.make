# Empty compiler generated dependencies file for hpmvm_memsim.
# This may be replaced when dependencies are built.
