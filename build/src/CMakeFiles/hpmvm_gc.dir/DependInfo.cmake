
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/CollectorPlan.cpp" "src/CMakeFiles/hpmvm_gc.dir/gc/CollectorPlan.cpp.o" "gcc" "src/CMakeFiles/hpmvm_gc.dir/gc/CollectorPlan.cpp.o.d"
  "/root/repo/src/gc/GenCopyPlan.cpp" "src/CMakeFiles/hpmvm_gc.dir/gc/GenCopyPlan.cpp.o" "gcc" "src/CMakeFiles/hpmvm_gc.dir/gc/GenCopyPlan.cpp.o.d"
  "/root/repo/src/gc/GenMSPlan.cpp" "src/CMakeFiles/hpmvm_gc.dir/gc/GenMSPlan.cpp.o" "gcc" "src/CMakeFiles/hpmvm_gc.dir/gc/GenMSPlan.cpp.o.d"
  "/root/repo/src/gc/HeapVerifier.cpp" "src/CMakeFiles/hpmvm_gc.dir/gc/HeapVerifier.cpp.o" "gcc" "src/CMakeFiles/hpmvm_gc.dir/gc/HeapVerifier.cpp.o.d"
  "/root/repo/src/gc/RememberedSet.cpp" "src/CMakeFiles/hpmvm_gc.dir/gc/RememberedSet.cpp.o" "gcc" "src/CMakeFiles/hpmvm_gc.dir/gc/RememberedSet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
