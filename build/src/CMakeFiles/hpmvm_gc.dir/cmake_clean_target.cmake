file(REMOVE_RECURSE
  "libhpmvm_gc.a"
)
