file(REMOVE_RECURSE
  "CMakeFiles/hpmvm_gc.dir/gc/CollectorPlan.cpp.o"
  "CMakeFiles/hpmvm_gc.dir/gc/CollectorPlan.cpp.o.d"
  "CMakeFiles/hpmvm_gc.dir/gc/GenCopyPlan.cpp.o"
  "CMakeFiles/hpmvm_gc.dir/gc/GenCopyPlan.cpp.o.d"
  "CMakeFiles/hpmvm_gc.dir/gc/GenMSPlan.cpp.o"
  "CMakeFiles/hpmvm_gc.dir/gc/GenMSPlan.cpp.o.d"
  "CMakeFiles/hpmvm_gc.dir/gc/HeapVerifier.cpp.o"
  "CMakeFiles/hpmvm_gc.dir/gc/HeapVerifier.cpp.o.d"
  "CMakeFiles/hpmvm_gc.dir/gc/RememberedSet.cpp.o"
  "CMakeFiles/hpmvm_gc.dir/gc/RememberedSet.cpp.o.d"
  "libhpmvm_gc.a"
  "libhpmvm_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmvm_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
