# Empty compiler generated dependencies file for hpmvm_gc.
# This may be replaced when dependencies are built.
