# Empty compiler generated dependencies file for db_locality.
# This may be replaced when dependencies are built.
