file(REMOVE_RECURSE
  "CMakeFiles/db_locality.dir/db_locality.cpp.o"
  "CMakeFiles/db_locality.dir/db_locality.cpp.o.d"
  "db_locality"
  "db_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
