# Empty compiler generated dependencies file for fig2_sampling_overhead.
# This may be replaced when dependencies are built.
