file(REMOVE_RECURSE
  "CMakeFiles/fig5_exec_time_heaps.dir/fig5_exec_time_heaps.cpp.o"
  "CMakeFiles/fig5_exec_time_heaps.dir/fig5_exec_time_heaps.cpp.o.d"
  "fig5_exec_time_heaps"
  "fig5_exec_time_heaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_exec_time_heaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
