# Empty compiler generated dependencies file for fig5_exec_time_heaps.
# This may be replaced when dependencies are built.
