# Empty compiler generated dependencies file for fig7_feedback_timeline.
# This may be replaced when dependencies are built.
