file(REMOVE_RECURSE
  "CMakeFiles/fig7_feedback_timeline.dir/fig7_feedback_timeline.cpp.o"
  "CMakeFiles/fig7_feedback_timeline.dir/fig7_feedback_timeline.cpp.o.d"
  "fig7_feedback_timeline"
  "fig7_feedback_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_feedback_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
