# Empty compiler generated dependencies file for ablation_coalloc.
# This may be replaced when dependencies are built.
