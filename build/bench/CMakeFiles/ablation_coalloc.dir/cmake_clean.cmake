file(REMOVE_RECURSE
  "CMakeFiles/ablation_coalloc.dir/ablation_coalloc.cpp.o"
  "CMakeFiles/ablation_coalloc.dir/ablation_coalloc.cpp.o.d"
  "ablation_coalloc"
  "ablation_coalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
