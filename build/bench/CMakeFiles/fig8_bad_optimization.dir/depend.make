# Empty dependencies file for fig8_bad_optimization.
# This may be replaced when dependencies are built.
