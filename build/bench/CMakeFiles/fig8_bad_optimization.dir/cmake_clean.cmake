file(REMOVE_RECURSE
  "CMakeFiles/fig8_bad_optimization.dir/fig8_bad_optimization.cpp.o"
  "CMakeFiles/fig8_bad_optimization.dir/fig8_bad_optimization.cpp.o.d"
  "fig8_bad_optimization"
  "fig8_bad_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bad_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
