# Empty compiler generated dependencies file for fig3_coallocated_objects.
# This may be replaced when dependencies are built.
