file(REMOVE_RECURSE
  "CMakeFiles/fig3_coallocated_objects.dir/fig3_coallocated_objects.cpp.o"
  "CMakeFiles/fig3_coallocated_objects.dir/fig3_coallocated_objects.cpp.o.d"
  "fig3_coallocated_objects"
  "fig3_coallocated_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_coallocated_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
