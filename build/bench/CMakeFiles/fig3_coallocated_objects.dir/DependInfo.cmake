
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_coallocated_objects.cpp" "bench/CMakeFiles/fig3_coallocated_objects.dir/fig3_coallocated_objects.cpp.o" "gcc" "bench/CMakeFiles/fig3_coallocated_objects.dir/fig3_coallocated_objects.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpmvm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpmvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
