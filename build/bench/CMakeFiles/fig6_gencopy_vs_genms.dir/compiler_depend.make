# Empty compiler generated dependencies file for fig6_gencopy_vs_genms.
# This may be replaced when dependencies are built.
