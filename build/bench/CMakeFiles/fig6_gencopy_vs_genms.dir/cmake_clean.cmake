file(REMOVE_RECURSE
  "CMakeFiles/fig6_gencopy_vs_genms.dir/fig6_gencopy_vs_genms.cpp.o"
  "CMakeFiles/fig6_gencopy_vs_genms.dir/fig6_gencopy_vs_genms.cpp.o.d"
  "fig6_gencopy_vs_genms"
  "fig6_gencopy_vs_genms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gencopy_vs_genms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
