# Empty compiler generated dependencies file for fig4_l1_miss_reduction.
# This may be replaced when dependencies are built.
