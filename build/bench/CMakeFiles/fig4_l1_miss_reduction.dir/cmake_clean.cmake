file(REMOVE_RECURSE
  "CMakeFiles/fig4_l1_miss_reduction.dir/fig4_l1_miss_reduction.cpp.o"
  "CMakeFiles/fig4_l1_miss_reduction.dir/fig4_l1_miss_reduction.cpp.o.d"
  "fig4_l1_miss_reduction"
  "fig4_l1_miss_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_l1_miss_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
