# Empty compiler generated dependencies file for table2_space_overhead.
# This may be replaced when dependencies are built.
