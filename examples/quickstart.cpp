//===-- examples/quickstart.cpp - Five-minute tour ------------------------===//
//
// The shortest end-to-end use of the library:
//   1. pick a benchmark program and a collector,
//   2. attach the HPM monitoring system,
//   3. run, and read back what the hardware feedback learned.
//
// Build & run:   ./examples/quickstart [workload] [scale%]
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"
#include "obs/Obs.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace hpmvm;

int main(int argc, char **argv) {
  if (!parseObsFlags(argc, argv))
    return 2;
  RunConfig Config;
  Config.Workload = argc > 1 ? argv[1] : "db";
  Config.Params.ScalePercent = argc > 2 ? atoi(argv[2]) : 50;
  Config.HeapFactor = 4.0;

  // Turn the monitoring system on: PEBS samples L1 misses every ~10K
  // events (the paper's 100K interval, time-scaled; DESIGN.md sec. 6),
  // the collector thread resolves them to bytecode, and the GC
  // co-allocates hot parent/child pairs.
  Config.Monitoring = true;
  Config.Coallocation = true;
  Config.Monitor.Event = HpmEventKind::L1DMiss;
  Config.Monitor.SamplingInterval = 10000;

  printf("Running '%s' (scale %u%%) under GenMS + HPM-guided "
         "co-allocation...\n\n",
         Config.Workload.c_str(), Config.Params.ScalePercent);

  Experiment E(Config);
  E.run();
  RunResult R = E.result();
  HpmMonitor *Monitor = E.monitor();

  printf("Execution:      %.1f virtual ms (%s cycles)\n",
         R.seconds() * 1e3, withThousandsSep(R.TotalCycles).c_str());
  printf("L1 misses:      %s   L2 misses: %s\n",
         withThousandsSep(R.Memory.L1Misses).c_str(),
         withThousandsSep(R.Memory.L2Misses).c_str());
  printf("GC:             %llu minor + %llu major collections, "
         "%s objects promoted\n",
         static_cast<unsigned long long>(R.Gc.MinorCollections),
         static_cast<unsigned long long>(R.Gc.MajorCollections),
         withThousandsSep(R.Gc.ObjectsPromoted).c_str());
  printf("Sampling:       %s samples taken, %s attributed to reference "
         "fields\n",
         withThousandsSep(R.SamplesTaken).c_str(),
         withThousandsSep(Monitor->stats().SamplesAttributed).c_str());
  printf("Co-allocation:  %s pairs placed by the GC\n",
         withThousandsSep(R.CoallocatedPairs).c_str());
  printf("Monitor cost:   %s cycles (%.2f%% of the run)\n",
         withThousandsSep(R.MonitorOverheadCycles).c_str(),
         100.0 * R.MonitorOverheadCycles / R.TotalCycles);
  printf("Sampled data:   nursery %llu / mature %llu / LOS %llu (the "
         "mature-space share is what co-allocation can fix)\n\n",
         static_cast<unsigned long long>(Monitor->stats().DataInNursery),
         static_cast<unsigned long long>(Monitor->stats().DataInMature),
         static_cast<unsigned long long>(Monitor->stats().DataInLos));

  // What did the hardware feedback learn? Print the hottest reference
  // fields -- the paper's per-reference miss counts.
  printf("Hottest reference fields (sampled L1 misses):\n");
  const ClassRegistry &Classes = E.vm().classes();
  std::vector<std::pair<uint64_t, std::string>> Hot;
  for (size_t F = 0; F != Classes.numFields(); ++F) {
    uint64_t M = Monitor->missTable().misses(static_cast<FieldId>(F));
    if (M)
      Hot.emplace_back(M, Classes.field(static_cast<FieldId>(F)).Name);
  }
  std::sort(Hot.rbegin(), Hot.rend());
  for (size_t I = 0; I != Hot.size() && I < 8; ++I)
    printf("  %6llu  %s\n", static_cast<unsigned long long>(Hot[I].first),
           Hot[I].second.c_str());
  if (Hot.empty())
    printf("  (none -- this program has no field-attributed misses)\n");
  return 0;
}
