//===-- examples/inspect_compiler.cpp - Look inside the pipeline ----------===//
//
// Developer tooling tour: build the paper's Figure 1 expression (p.y.i),
// show the bytecode, the optimizing compiler's machine IR with its
// per-instruction machine-code map and GC points, and the
// instructions-of-interest annotations the monitoring system computes.
//
// Build & run:   ./examples/inspect_compiler
//
//===----------------------------------------------------------------------===//

#include "core/InterestAnalysis.h"
#include "vm/BytecodeBuilder.h"
#include "vm/Disassembler.h"
#include "vm/OptCompiler.h"
#include "vm/VirtualMachine.h"

#include <cstdio>

using namespace hpmvm;

int main() {
  VirtualMachine Vm;
  ClassRegistry &C = Vm.classes();

  // The paper's Figure 1: class A { A y; int i; }  ...  p.y.i
  ClassId A = C.defineClass("A", {{"y", true}, {"i", false}});
  FieldId FY = C.fieldId(A, "y");
  FieldId FI = C.fieldId(A, "i");

  BytecodeBuilder B("foo");
  uint32_t P = B.addParam(ValKind::Ref);
  B.returns(RetKind::Int);
  B.aload(P)       // I1: aload p
      .getfield(FY) // I2: getfield y
      .getfield(FI) // I3: getfield i
      .iret();
  MethodId Id = Vm.addMethod(B.build());

  printf("=== Figure 1: the expression p.y.i ===\n\n");
  printf("%s\n", disassembleMethod(Vm.method(Id), C, Vm.methods()).c_str());

  MachineFunction F = OptCompiler::compile(Vm.method(Id), C, Vm.methods(),
                                           Vm.globalKinds());
  Vm.installCompiledCode(Vm.method(Id), std::move(F));
  const MachineFunction &Installed =
      Vm.compiledCode(Vm.method(Id).OptIndex);

  std::vector<FieldId> Interest =
      computeInstructionsOfInterest(Installed, C);
  printf("%s\n",
         disassembleMachineFunction(Installed, C, Vm.methods(), &Interest)
             .c_str());

  printf("The paper: \"Our analysis would create a mapping with "
         "instruction and field y (I3, A::y)\" -- the load of i above is "
         "annotated with \"misses -> A::y\": a cache miss sampled there "
         "is charged to the reference field y, so the GC will co-allocate "
         "A objects with their y referents.\n");
  return 0;
}
