//===-- examples/db_locality.cpp - The paper's headline experiment --------===//
//
// _209_db end to end, three configurations side by side:
//   baseline      GenMS, no monitoring
//   monitor-only  sampling on, optimization off (cost of observation)
//   dyn-coalloc   sampling drives object co-allocation in the GC
//
// This is the experiment behind the abstract's claim: "In the best case,
// the execution time is reduced by 14% and L1 cache misses by 28%."
//
// Build & run:   ./examples/db_locality [scale%]
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"
#include "harness/ExperimentRunner.h"
#include "obs/Obs.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace hpmvm;

namespace {

RunResult runMode(uint32_t Scale, int Mode, HeapCensus *CensusOut) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = Scale;
  C.HeapFactor = 4.0;
  if (Mode >= 1) {
    C.Monitoring = true;
    C.Monitor.SamplingInterval = 10000;
  }
  C.Coallocation = Mode == 2;
  Experiment E(C);
  E.run();
  if (CensusOut)
    if (auto *Plan = dynamic_cast<GenMSPlan *>(&E.collector()))
      *CensusOut = HeapVerifier::census(*Plan, E.vm().objects());
  return E.result();
}

} // namespace

int main(int argc, char **argv) {
  if (!parseObsFlags(argc, argv))
    return 2;
  uint32_t Scale = argc > 1 ? atoi(argv[1]) : 100;
  printf("db locality experiment at scale %u%% (heap = 4x min)\n\n", Scale);

  const char *Names[3] = {"baseline", "monitor-only", "dyn-coalloc"};
  RunResult R[3];
  HeapCensus Census;
  for (int M = 0; M != 3; ++M) {
    R[M] = runMode(Scale, M, M == 2 ? &Census : nullptr);
    printf("%-12s  time %7.1f ms   L1 %10s   L2 %9s   pairs %s\n",
           Names[M], R[M].seconds() * 1e3,
           withThousandsSep(R[M].Memory.L1Misses).c_str(),
           withThousandsSep(R[M].Memory.L2Misses).c_str(),
           withThousandsSep(R[M].CoallocatedPairs).c_str());
  }

  double TimeRatio =
      static_cast<double>(R[2].TotalCycles) / R[0].TotalCycles;
  double MissRatio =
      static_cast<double>(R[2].Memory.L1Misses) / R[0].Memory.L1Misses;
  double MonitorOverhead =
      static_cast<double>(R[1].TotalCycles) / R[0].TotalCycles - 1.0;

  printf("\nWith HPM-guided co-allocation:\n");
  printf("  execution time %s   (paper's best case: -13.9%%)\n",
         asPercent(TimeRatio - 1.0).c_str());
  printf("  L1 misses      %s   (paper's best case: -28%%)\n",
         asPercent(MissRatio - 1.0).c_str());
  printf("  monitoring-only overhead %s (paper: ~1-2%% at the 25K "
         "interval)\n",
         asPercent(MonitorOverhead).c_str());

  printf("\nFinal heap census (dyn-coalloc): %llu objects, %llu shared "
         "cells holding co-allocated Record/char[] pairs\n",
         static_cast<unsigned long long>(Census.totalObjects()),
         static_cast<unsigned long long>(Census.CoallocatedCells));
  return 0;
}
