//===-- examples/db_locality.cpp - The paper's headline experiment --------===//
//
// _209_db end to end, three configurations side by side:
//   baseline      GenMS, no monitoring
//   monitor-only  sampling on, optimization off (cost of observation)
//   dyn-coalloc   sampling drives object co-allocation in the GC
//
// This is the experiment behind the abstract's claim: "In the best case,
// the execution time is reduced by 14% and L1 cache misses by 28%."
//
// Build & run:   ./examples/db_locality [scale%] [--jobs N]
//
// The three runs are independent; --jobs 3 executes them concurrently
// through harness/ParallelRunner with output identical to --jobs 1.
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"
#include "harness/ExperimentRunner.h"
#include "harness/ParallelRunner.h"
#include "obs/Obs.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace hpmvm;

namespace {

RunResult runMode(uint32_t Scale, int Mode, HeapCensus *CensusOut) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = Scale;
  C.HeapFactor = 4.0;
  if (Mode >= 1) {
    C.Monitoring = true;
    C.Monitor.SamplingInterval = 10000;
  }
  C.Coallocation = Mode == 2;
  Experiment E(C);
  E.run();
  if (CensusOut)
    if (auto *Plan = dynamic_cast<GenMSPlan *>(&E.collector()))
      *CensusOut = HeapVerifier::census(*Plan, E.vm().objects());
  return E.result();
}

} // namespace

int main(int argc, char **argv) {
  if (!parseObsFlags(argc, argv))
    return 2;
  uint32_t Scale = 100;
  unsigned Jobs = 1;
  for (int I = 1; I < argc; ++I) {
    if (!strcmp(argv[I], "--jobs") && I + 1 < argc) {
      char *End = nullptr;
      unsigned long V = strtoul(argv[++I], &End, 10);
      if (!End || *End || V > 1024) {
        fprintf(stderr, "db_locality: invalid --jobs value '%s'\n",
                argv[I]);
        return 2;
      }
      Jobs = effectiveJobs(static_cast<unsigned>(V));
    } else {
      char *End = nullptr;
      unsigned long V = strtoul(argv[I], &End, 10);
      if (!End || *End || V == 0 || V > 100000) {
        fprintf(stderr,
                "usage: db_locality [scale%%] [--jobs N] (got '%s')\n",
                argv[I]);
        return 2;
      }
      Scale = static_cast<uint32_t>(V);
    }
  }
  printf("db locality experiment at scale %u%% (heap = 4x min)\n\n", Scale);

  const char *Names[3] = {"baseline", "monitor-only", "dyn-coalloc"};
  RunResult R[3];
  HeapCensus Census;
  parallelFor(3, Jobs, [&](size_t M) {
    R[M] = runMode(Scale, static_cast<int>(M), M == 2 ? &Census : nullptr);
  });
  for (int M = 0; M != 3; ++M)
    printf("%-12s  time %7.1f ms   L1 %10s   L2 %9s   pairs %s\n",
           Names[M], R[M].seconds() * 1e3,
           withThousandsSep(R[M].Memory.L1Misses).c_str(),
           withThousandsSep(R[M].Memory.L2Misses).c_str(),
           withThousandsSep(R[M].CoallocatedPairs).c_str());

  double TimeRatio =
      static_cast<double>(R[2].TotalCycles) / R[0].TotalCycles;
  double MissRatio =
      static_cast<double>(R[2].Memory.L1Misses) / R[0].Memory.L1Misses;
  double MonitorOverhead =
      static_cast<double>(R[1].TotalCycles) / R[0].TotalCycles - 1.0;

  printf("\nWith HPM-guided co-allocation:\n");
  printf("  execution time %s   (paper's best case: -13.9%%)\n",
         asPercent(TimeRatio - 1.0).c_str());
  printf("  L1 misses      %s   (paper's best case: -28%%)\n",
         asPercent(MissRatio - 1.0).c_str());
  printf("  monitoring-only overhead %s (paper: ~1-2%% at the 25K "
         "interval)\n",
         asPercent(MonitorOverhead).c_str());

  printf("\nFinal heap census (dyn-coalloc): %llu objects, %llu shared "
         "cells holding co-allocated Record/char[] pairs\n",
         static_cast<unsigned long long>(Census.totalObjects()),
         static_cast<unsigned long long>(Census.CoallocatedCells));
  return 0;
}
