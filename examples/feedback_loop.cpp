//===-- examples/feedback_loop.cpp - Assess-and-revert in action ----------===//
//
// The paper's "performance-aware runtime" demo (Figure 8): run the db
// record/char[] pattern in a steady state under HPM-guided co-allocation,
// then deliberately sabotage the placement mid-run by forcing a 128-byte
// gap between each Record and its char[]. The OptimizationController
// watches the per-period miss rate of Record::value through the HPM
// feedback, notices the regression after a few measurement periods, and
// switches the policy back -- the system undoes its own bad decision.
//
// Build & run:   ./examples/feedback_loop [scale%]
//
// Telemetry: pass --metrics-out loop.json --trace-out loop.trace.json to
// dump the run's counters and a chrome://tracing timeline showing GC
// pauses, collector polls, the phase structure, and the controller's
// policy-change / revert instants.
//
//===----------------------------------------------------------------------===//

#include "core/HpmMonitor.h"
#include "core/OptimizationController.h"
#include "gc/GenMSPlan.h"
#include "obs/Obs.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/VirtualMachine.h"
#include "workloads/PatternKernels.h"

#include <cstdio>
#include <cstdlib>

using namespace hpmvm;

int main(int argc, char **argv) {
  if (!parseObsFlags(argc, argv))
    return 2;
  uint32_t Scale = argc > 1 ? atoi(argv[1]) : 100;

  // One telemetry context for the whole run; components attached below
  // feed it, everything else counts into the sinks.
  ObsContext Obs(processObsConfig());

  // --- VM + GenMS + a steady-state record-table program ---------------------
  VmConfig VC;
  VC.HeapBytes = 16 * 1024 * 1024;
  VC.Seed = 42;
  VirtualMachine Vm(VC);
  GenMSPlan Gc(Vm.objects(), Vm.clock(),
               CollectorConfig{.HeapBytes = VC.HeapBytes});
  Vm.setCollector(&Gc);

  RecordTableParams P;
  P.Prefix = "db";
  P.NumRecords = scaled(8000, WorkloadParams{Scale, 42});
  P.MinChars = 8;
  P.MaxChars = 24;
  P.TouchChars = 8;
  P.ScanPasses = 6;
  P.SortPasses = 0;
  P.Iterations = 16;
  P.GarbageEvery = 1;
  P.GarbageChars = 24;
  WorkloadProgram Prog = buildRecordTable(Vm, P);
  Vm.aos().applyCompilationPlan(Prog.CompilationPlan);

  MonitorConfig MC;
  MC.SamplingInterval = 4000;
  HpmMonitor Monitor(Vm, MC);
  Monitor.attach();

  Vm.attachObs(Obs);
  Gc.attachObs(Obs);
  Monitor.attachObs(Obs);

  FieldId FValue = Vm.classes().fieldId(0, "value");
  Monitor.missTable().trackField(FValue);

  // --- The controller watching Record::value --------------------------------
  ControllerConfig CC;
  CC.BaselineWindow = 8;
  CC.DecisionWindow = 8;
  CC.WarmupPeriods = 4;
  CC.RegressionFactor = 1.25;
  CC.IgnoreZeroRatePeriods = true;
  OptimizationController Controller(CC);
  Controller.attachObs(Obs, &Vm.clock());

  CoallocationAdvisor &Advisor = Monitor.advisor();
  int Period = 0;
  Controller.setRevertAction([&] {
    printf("  period %3d: REGRESSION DETECTED -> reverting to gap-free "
           "placement (pre-change rate %.2f, under the bad policy "
           "%.2f samples/period)\n",
           Period, Controller.decisionBaseline(),
           Controller.assessedRate());
    Advisor.setForcedGapBytes(0);
  });

  bool Injected = false;
  const uint64_t EstablishedPairs = 3ull * P.NumRecords;
  int ActiveSinceEstablished = 0;
  Monitor.setPeriodObserver([&] {
    ++Period;
    const auto &Line = Monitor.missTable().timeline(FValue);
    if (Line.empty())
      return;
    Controller.observePeriod(static_cast<double>(Line.back().Delta));
    if (!Injected && Gc.stats().ObjectsCoallocated >= EstablishedPairs &&
        Line.back().Delta > 0 && ++ActiveSinceEstablished > 8) {
      Injected = true;
      printf("  period %3d: injecting a BAD placement policy (128-byte "
             "gap between Record and char[])\n",
             Period);
      Advisor.setForcedGapBytes(128);
      Controller.notePolicyChange();
    }
  });

  printf("Running a steady-state db with the online feedback controller "
         "watching Record::value...\n");
  Vm.run(Prog.Main);
  Monitor.finish();

  printf("\nFinal controller state: ");
  switch (Controller.state()) {
  case OptimizationController::State::Reverted:
    printf("reverted (the system undid its own bad decision)\n");
    break;
  case OptimizationController::State::Accepted:
    printf("accepted (no regression was measured)\n");
    break;
  default:
    printf("inconclusive (run too short; try a larger scale)\n");
    break;
  }
  printf("Padding the GC inserted while the bad policy was live: %llu "
         "bytes\n",
         static_cast<unsigned long long>(Gc.stats().CoallocGapBytes));
  if (!Obs.exportAll())
    return 1;
  return 0;
}
