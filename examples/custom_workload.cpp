//===-- examples/custom_workload.cpp - Author your own program ------------===//
//
// Shows the full public API below the workload registry: define classes,
// assemble bytecode with BytecodeBuilder, wire a VM + collector + monitor
// by hand, run, and inspect the per-field miss ranking.
//
// The program: a "session cache" -- a ring of Session objects, each
// holding a token (char[]) and a Stats record; lookups dereference
// Session::token in shuffled order, so token should become the hottest
// field and the GC should co-allocate Session+token pairs.
//
// Build & run:   ./examples/custom_workload
//
//===----------------------------------------------------------------------===//

#include "core/HpmMonitor.h"
#include "gc/GenMSPlan.h"
#include "support/Format.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <cstdio>

using namespace hpmvm;

int main() {
  // --- 1. A VM with a GenMS collector --------------------------------------
  VmConfig VC;
  VC.HeapBytes = 8 * 1024 * 1024;
  VC.Seed = 7;
  VirtualMachine Vm(VC);
  CollectorConfig CC;
  CC.HeapBytes = VC.HeapBytes;
  GenMSPlan Gc(Vm.objects(), Vm.clock(), CC);
  Vm.setCollector(&Gc);

  // --- 2. Classes ------------------------------------------------------------
  ClassRegistry &C = Vm.classes();
  ClassId Session = C.defineClass("Session", {{"token", true},
                                              {"stats", true},
                                              {"hits", false}});
  ClassId Stats = C.defineClass("Stats", {{"count", false}});
  ClassId Chars = C.defineArrayClass("char[]", ElemKind::I16);
  ClassId SessArr = C.defineArrayClass("Session[]", ElemKind::Ref);
  ClassId IntArr = C.defineArrayClass("int[]", ElemKind::I32);
  FieldId FToken = C.fieldId(Session, "token");
  FieldId FStats = C.fieldId(Session, "stats");
  FieldId FHits = C.fieldId(Session, "hits");
  FieldId FCount = C.fieldId(Stats, "count");
  uint32_t GCache = Vm.addGlobal(ValKind::Ref);
  uint32_t GIndex = Vm.addGlobal(ValKind::Ref);

  const int32_t N = 20000;

  // --- 3. Bytecode -------------------------------------------------------------
  // setup(): cache = N sessions; index = shuffled lookup order.
  BytecodeBuilder Setup("setup");
  {
    uint32_t Arr = Setup.newLocal(), S = Setup.newLocal(),
             St = Setup.newLocal(), I = Setup.newLocal(),
             J = Setup.newLocal(), Tmp = Setup.newLocal(),
             Idx = Setup.newLocal();
    Setup.returns(RetKind::Void);
    Setup.iconst(N).newArray(SessArr).astore(Arr);
    Setup.aload(Arr).gput(GCache);
    Label H = Setup.label(), D = Setup.label();
    Setup.iconst(0).istore(I);
    Setup.bind(H).iload(I).iconst(N).ifICmp(CondKind::Ge, D);
    Setup.newObj(Session).astore(S);
    Setup.aload(S).iconst(16).newArray(Chars).putfield(FToken);
    Setup.newObj(Stats).astore(St);
    Setup.aload(St).iload(I).putfield(FCount);
    Setup.aload(S).aload(St).putfield(FStats);
    Setup.aload(Arr).iload(I).aload(S).astoreR();
    Setup.iinc(I, 1).jump(H);
    Setup.bind(D);
    // Shuffled index.
    Setup.iconst(N).newArray(IntArr).astore(Idx);
    Setup.aload(Idx).gput(GIndex);
    Label H2 = Setup.label(), D2 = Setup.label();
    Setup.iconst(0).istore(I);
    Setup.bind(H2).iload(I).iconst(N).ifICmp(CondKind::Ge, D2);
    Setup.aload(Idx).iload(I).iload(I).astoreI();
    Setup.iinc(I, 1).jump(H2);
    Setup.bind(D2);
    Label H3 = Setup.label(), D3 = Setup.label();
    Setup.iconst(N - 1).istore(I);
    Setup.bind(H3).iload(I).iconst(1).ifICmp(CondKind::Lt, D3);
    Setup.iload(I).iconst(1).iadd().rand().istore(J);
    Setup.aload(Idx).iload(I).aloadI().istore(Tmp);
    Setup.aload(Idx).iload(I).aload(Idx).iload(J).aloadI().astoreI();
    Setup.aload(Idx).iload(J).iload(Tmp).astoreI();
    Setup.iinc(I, -1).jump(H3);
    Setup.bind(D3).ret();
  }
  MethodId SetupId = Vm.addMethod(Setup.build());

  // lookups(rounds) -> acc: shuffled token dereferences + churn.
  BytecodeBuilder Look("lookups");
  uint32_t Rounds = Look.addParam(ValKind::Int);
  {
    uint32_t Cache = Look.newLocal(), Idx = Look.newLocal(),
             S = Look.newLocal(), Acc = Look.newLocal(),
             R = Look.newLocal(), I = Look.newLocal();
    Look.returns(RetKind::Int);
    Look.gget(GCache).astore(Cache).gget(GIndex).astore(Idx);
    Look.iconst(0).istore(Acc);
    Label RH = Look.label(), RD = Look.label();
    Look.iconst(0).istore(R);
    Look.bind(RH).iload(R).iload(Rounds).ifICmp(CondKind::Ge, RD);
    Label H = Look.label(), D = Look.label();
    Look.iconst(0).istore(I);
    Look.bind(H).iload(I).iconst(N).ifICmp(CondKind::Ge, D);
    Look.aload(Cache).aload(Idx).iload(I).aloadI().aloadR().astore(S);
    Look.aload(S).getfield(FToken).iconst(0).aloadI().iload(Acc).iadd()
        .istore(Acc);
    // hits++ via dup: [S, S] -> [S, hits] -> [S, hits+1] -> putfield.
    Look.aload(S).dup().getfield(FHits).iconst(1).iadd().putfield(FHits);
    Look.aload(S).getfield(FStats).getfield(FCount).iload(Acc).iadd()
        .istore(Acc);
    // Churn: a temp token per 2 lookups keeps the nursery turning.
    Label NoG = Look.label();
    Look.iload(I).iconst(2).irem().ifZ(CondKind::Ne, NoG);
    Look.iconst(16).newArray(Chars).popv();
    Look.bind(NoG);
    Look.iinc(I, 1).jump(H);
    Look.bind(D).iinc(R, 1).jump(RH);
    Look.bind(RD).iload(Acc).iret();
  }
  MethodId LookId = Vm.addMethod(Look.build());

  // Three build+lookup iterations: the first teaches the monitor which
  // fields miss; later iterations' promotions get co-allocated.
  BytecodeBuilder Main("main");
  {
    uint32_t It = Main.newLocal();
    Main.returns(RetKind::Void);
    Label H = Main.label(), D = Main.label();
    Main.iconst(0).istore(It);
    Main.bind(H).iload(It).iconst(3).ifICmp(CondKind::Ge, D);
    Main.call(SetupId);
    Main.iconst(4).call(LookId).popv();
    Main.iinc(It, 1).jump(H);
    Main.bind(D).ret();
  }
  MethodId MainId = Vm.addMethod(Main.build());

  // --- 4. Pseudo-adaptive compile + monitoring ------------------------------
  Vm.aos().applyCompilationPlan({"setup", "lookups", "main"});
  MonitorConfig MC;
  MC.SamplingInterval = 10000;
  HpmMonitor Monitor(Vm, MC);
  Monitor.attach();

  // --- 5. Run and inspect -----------------------------------------------------
  Vm.run(MainId);
  Monitor.finish();

  printf("custom workload 'session cache' finished:\n");
  printf("  %.1f virtual ms, %s L1 misses, %llu GCs, %s pairs "
         "co-allocated\n",
         VirtualClock::toSeconds(Vm.clock().now()) * 1e3,
         withThousandsSep(Vm.memory().stats().L1Misses).c_str(),
         static_cast<unsigned long long>(Gc.stats().MinorCollections +
                                         Gc.stats().MajorCollections),
         withThousandsSep(Gc.stats().ObjectsCoallocated).c_str());
  printf("  field misses: token=%llu stats=%llu (the hottest drives "
         "co-allocation)\n",
         static_cast<unsigned long long>(Monitor.missTable().misses(FToken)),
         static_cast<unsigned long long>(
             Monitor.missTable().misses(FStats)));
  return 0;
}
