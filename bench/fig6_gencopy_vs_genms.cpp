//===-- bench/fig6_gencopy_vs_genms.cpp - Paper Figure 6 ------------------===//
//
// Figure 6: "GenCopy vs GenMS with co-allocation" on _209_db across heap
// sizes (normalized execution time, baseline = plain GenMS).
//
// Shape to reproduce: GenCopy beats plain GenMS (copying compacts the
// mature space) but GenMS+co-allocation beats GenCopy throughout all heap
// sizes (paper: by 7% at large heaps up to 10% at small heaps), combining
// space efficiency with locality.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  bench::initObs(Argc, Argv);
  uint32_t Scale = envScale(100);
  const double Heaps[] = {1.0, 1.5, 2.0, 3.0, 4.0};
  banner("Figure 6: GenCopy vs GenMS+co-allocation on db",
         "Figure 6 (normalized execution time of _209_db)", Scale,
         "GenMS+coalloc < GenCopy < GenMS(plain) at every heap size");

  TableWriter T({"heap", "GenMS (base)", "GenCopy", "GenMS+coalloc",
                 "coalloc vs base", "coalloc vs GenCopy"});
  for (double H : Heaps) {
    RunConfig Base;
    Base.Workload = "db";
    Base.Params.ScalePercent = Scale;
    Base.Params.Seed = envSeed();
    Base.HeapFactor = H;
    RunResult B = runExperiment(Base);

    RunConfig Copy = Base;
    Copy.Collector = CollectorKind::GenCopy;
    RunResult Cp = runExperiment(Copy);

    RunConfig Opt = Base;
    Opt.Monitoring = true;
    Opt.Coallocation = true;
    Opt.Monitor.SamplingInterval = 10000; // Paper-equivalent, scaled.
    RunResult O = runExperiment(Opt);

    double RCopy = static_cast<double>(Cp.TotalCycles) / B.TotalCycles;
    double ROpt = static_cast<double>(O.TotalCycles) / B.TotalCycles;
    T.addRow({formatString("%.1fx", H), "1.000",
              formatString("%.3f", RCopy), formatString("%.3f", ROpt),
              pct(ROpt), pct(ROpt / RCopy)});
  }
  emit(T, "fig6");
  return 0;
}
