//===-- bench/fig6_gencopy_vs_genms.cpp - Paper Figure 6 ------------------===//
//
// Figure 6: "GenCopy vs GenMS with co-allocation" on _209_db across heap
// sizes (normalized execution time, baseline = plain GenMS).
//
// Shape to reproduce: GenCopy beats plain GenMS (copying compacts the
// mature space) but GenMS+co-allocation beats GenCopy throughout all heap
// sizes (paper: by 7% at large heaps up to 10% at small heaps), combining
// space efficiency with locality.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(100);
  banner("Figure 6: GenCopy vs GenMS+co-allocation on db",
         "Figure 6 (normalized execution time of _209_db)", Scale,
         "GenMS+coalloc < GenCopy < GenMS(plain) at every heap size");

  SuiteSpec S;
  S.Workloads = {"db"};
  S.HeapFactors = {1.0, 1.5, 2.0, 3.0, 4.0};
  S.Params.ScalePercent = Scale;
  S.Params.Seed = envSeed();
  S.Repeat = Opts.Repeat;
  S.Variants = {
      {"base", nullptr},
      {"gencopy",
       [](RunConfig &C) { C.Collector = CollectorKind::GenCopy; }},
      {"coalloc",
       [](RunConfig &C) {
         C.Monitoring = true;
         C.Coallocation = true;
         C.Monitor.SamplingInterval = 10000; // Paper-equivalent, scaled.
       }},
  };
  SuiteResults R = runSuite(S, suiteOptions(Opts));

  auto Cycles = [](const RunResult &Res) {
    return static_cast<double>(Res.TotalCycles);
  };

  TableWriter T({"heap", "GenMS (base)", "GenCopy", "GenMS+coalloc",
                 "coalloc vs base", "coalloc vs GenCopy"});
  for (size_t H = 0; H != S.HeapFactors.size(); ++H) {
    double Base = R.mean(0, H, 0, 0, Cycles);
    double RCopy = R.mean(0, H, 0, 1, Cycles) / Base;
    double ROpt = R.mean(0, H, 0, 2, Cycles) / Base;
    T.addRow({formatString("%.1fx", S.HeapFactors[H]), "1.000",
              formatString("%.3f", RCopy), formatString("%.3f", ROpt),
              pct(ROpt), pct(ROpt / RCopy)});
  }
  emit(T, "fig6");
  maybeWriteJson(Opts, "fig6", R);
  return 0;
}
