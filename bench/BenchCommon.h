//===-- bench/BenchCommon.h - Shared bench harness helpers -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the per-table/per-figure bench binaries: common
/// environment knobs, workload iteration, result formatting, and the CSV
/// mirror each bench prints for plotting.
///
/// Environment variables:
///   HPMVM_SCALE      data-set scale in percent (default: per-bench)
///   HPMVM_WORKLOADS  comma-separated subset, e.g. "db,compress"
///   HPMVM_SEED       base RNG seed (default 42)
///
/// Command-line flags (every bench binary, via initObs):
///   --metrics-out <path>  write the final metrics snapshot JSON
///   --trace-out <path>    write a chrome://tracing JSON of the run
///   --log-level <level>   trace|debug|info|warn|error|off (default info)
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_BENCH_BENCHCOMMON_H
#define HPMVM_BENCH_BENCHCOMMON_H

#include "harness/ExperimentRunner.h"
#include "obs/Obs.h"
#include "support/Format.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace hpmvm::bench {

/// Standard telemetry flag handling for bench/example mains: strips
/// --metrics-out/--trace-out/--log-level from argv into the process-wide
/// ObsConfig (inherited by every Experiment) and exits on a malformed
/// flag. Call first thing in main().
inline void initObs(int &Argc, char **Argv) {
  if (!parseObsFlags(Argc, Argv))
    exit(2);
}

inline uint32_t envScale(uint32_t Default) {
  if (const char *S = getenv("HPMVM_SCALE"))
    return static_cast<uint32_t>(atoi(S));
  return Default;
}

inline uint64_t envSeed() {
  if (const char *S = getenv("HPMVM_SEED"))
    return static_cast<uint64_t>(atoll(S));
  return 42;
}

/// The workload names to run: all 16, or the HPMVM_WORKLOADS subset.
inline std::vector<std::string> selectedWorkloads() {
  std::vector<std::string> Names;
  if (const char *Env = getenv("HPMVM_WORKLOADS")) {
    std::string S(Env);
    size_t Pos = 0;
    while (Pos != std::string::npos) {
      size_t Comma = S.find(',', Pos);
      std::string Name = S.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      if (!Name.empty() && findWorkload(Name))
        Names.push_back(Name);
      Pos = Comma == std::string::npos ? Comma : Comma + 1;
    }
    return Names;
  }
  for (const WorkloadSpec &W : allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

/// Standard banner: which experiment, which scale/seed, how to read it.
inline void banner(const char *Title, const char *PaperRef, uint32_t Scale,
                   const char *ShapeNote) {
  printf("=== %s ===\n", Title);
  printf("Reproduces: %s\n", PaperRef);
  printf("Scale: %u%% of default data sizes, seed %llu "
         "(HPMVM_SCALE / HPMVM_SEED / HPMVM_WORKLOADS to override)\n",
         Scale, static_cast<unsigned long long>(envSeed()));
  printf("Expected shape: %s\n\n", ShapeNote);
}

/// Prints a table and its CSV mirror.
inline void emit(TableWriter &T, const char *CsvTag) {
  T.print(stdout);
  printf("\nCSV (%s):\n", CsvTag);
  T.printCsv(stdout);
  printf("\n");
}

/// Percent formatting of a ratio-1 (e.g. 0.861 -> "-13.9%").
inline std::string pct(double Ratio) { return asPercent(Ratio - 1.0); }

} // namespace hpmvm::bench

#endif // HPMVM_BENCH_BENCHCOMMON_H
