//===-- bench/BenchCommon.h - Shared bench harness helpers -----*- C++ -*-===//
//
// Part of the hpmvm project (PLDI 2007 HPM-guided optimization repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the per-table/per-figure bench binaries: uniform
/// command-line flags, validated environment knobs, workload selection,
/// result formatting, and the CSV mirror each bench prints for plotting.
///
/// Environment variables (validated; garbage is a hard error, not 0):
///   HPMVM_SCALE      data-set scale in percent (default: per-bench)
///   HPMVM_WORKLOADS  comma-separated subset, e.g. "db,compress"; every
///                    name must exist in the registry
///   HPMVM_SEED       base RNG seed (default 42)
///
/// Command-line flags (every bench binary, via bench::init):
///   --jobs <n>            run the experiment grid on n threads (0 = one
///                         per hardware thread; default 1 = serial).
///                         Output is bit-identical for every job count.
///   --filter <substr>     only run workloads whose name contains substr
///   --repeat <n>          run every grid cell n times (seeds base+0..n-1);
///                         tables report per-cell means
///   --json-out <path>     write all run results as one JSON document
///   --metrics-out <path>  write the final metrics snapshot JSON
///   --trace-out <path>    write a chrome://tracing JSON of the run
///   --journal-out <path>  write the decision journal as JSONL
///   --self-profile        time the sample pipeline's own stages (host
///                         clock; adds pipeline.stage.* histograms)
///   --log-level <level>   trace|debug|info|warn|error|off (default info)
///
/// Every *-out flag creates the target's parent directory if missing and
/// exits 2 (naming the path) when it cannot.
///
//===----------------------------------------------------------------------===//

#ifndef HPMVM_BENCH_BENCHCOMMON_H
#define HPMVM_BENCH_BENCHCOMMON_H

#include "harness/ParallelRunner.h"
#include "harness/Suite.h"
#include "obs/Obs.h"
#include "support/Flags.h"
#include "support/Format.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace hpmvm::bench {

/// The uniform bench flag set (on top of the obs flags).
struct BenchOptions {
  unsigned Jobs = 1;       ///< --jobs; 0 = hardware concurrency.
  std::string Filter;      ///< --filter; workload-name substring.
  uint32_t Repeat = 1;     ///< --repeat.
  std::string JsonOutPath; ///< --json-out.
};

/// Strict unsigned parse, shared with every flag-taking binary (see
/// support/Flags.h for why strictness matters).
inline bool parseUint(const char *Text, uint64_t &Out) {
  return flags::parseUint(Text, Out);
}

/// Splits a comma-separated workload list, validating every name against
/// the registry. On failure fills \p Error and returns false. An empty
/// result (e.g. HPMVM_WORKLOADS=",") is an error: silently running nothing
/// looks exactly like success.
inline bool parseWorkloadList(const std::string &List,
                              std::vector<std::string> &Names,
                              std::string &Error) {
  Names.clear();
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    size_t End = Comma == std::string::npos ? List.size() : Comma;
    std::string Name = List.substr(Pos, End - Pos);
    if (!Name.empty()) {
      if (!findWorkload(Name)) {
        Error = "unknown workload '" + Name + "' (valid:";
        for (const WorkloadSpec &W : allWorkloads())
          Error += " " + W.Name;
        Error += ")";
        return false;
      }
      Names.push_back(Name);
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  if (Names.empty()) {
    Error = "workload list '" + List + "' selects nothing";
    return false;
  }
  return true;
}

/// Validated environment read; exits with a clear message on garbage.
inline uint64_t envUint(const char *Var, uint64_t Default) {
  const char *S = getenv(Var);
  if (!S)
    return Default;
  uint64_t V = 0;
  if (!parseUint(S, V)) {
    fprintf(stderr, "error: %s='%s' is not an unsigned integer\n", Var, S);
    exit(2);
  }
  return V;
}

inline uint32_t envScale(uint32_t Default) {
  uint64_t V = envUint("HPMVM_SCALE", Default);
  if (V == 0 || V > 100000) {
    fprintf(stderr,
            "error: HPMVM_SCALE=%llu out of range (want 1..100000)\n",
            static_cast<unsigned long long>(V));
    exit(2);
  }
  return static_cast<uint32_t>(V);
}

inline uint64_t envSeed() { return envUint("HPMVM_SEED", 42); }

/// The workload names to run: all 16, or the validated HPMVM_WORKLOADS
/// subset, optionally narrowed by --filter. Exits (with the valid names)
/// when the selection is malformed or empty -- a figure that silently
/// sweeps zero programs is worse than one that refuses to start.
inline std::vector<std::string>
selectedWorkloads(const std::string &Filter = "") {
  std::vector<std::string> Names;
  if (const char *Env = getenv("HPMVM_WORKLOADS")) {
    std::string Error;
    if (!parseWorkloadList(Env, Names, Error)) {
      fprintf(stderr, "error: HPMVM_WORKLOADS: %s\n", Error.c_str());
      exit(2);
    }
  } else {
    for (const WorkloadSpec &W : allWorkloads())
      Names.push_back(W.Name);
  }
  if (!Filter.empty()) {
    std::vector<std::string> Kept;
    for (const std::string &N : Names)
      if (N.find(Filter) != std::string::npos)
        Kept.push_back(N);
    if (Kept.empty()) {
      fprintf(stderr, "error: --filter '%s' matches no selected workload\n",
              Filter.c_str());
      exit(2);
    }
    Names = Kept;
  }
  return Names;
}

/// Parses the uniform bench flags out of argv (after the obs flags were
/// stripped). \returns false (with a message) on malformed or unknown
/// flags; argc/argv are compacted in place.
inline bool parseBenchFlags(int &Argc, char **Argv, BenchOptions &Opts) {
  flags::ArgScanner S(Argc, Argv);
  while (S.next()) {
    std::string Value;
    uint64_t V = 0;
    if (S.takeUint("--jobs", 1024, V)) {
      Opts.Jobs = static_cast<unsigned>(V);
    } else if (S.takeUint("--repeat", 1000, V)) {
      if (S.ok() && V == 0) {
        fprintf(stderr, "error: --repeat wants at least 1\n");
        S.fail();
      }
      Opts.Repeat = static_cast<uint32_t>(V);
    } else if (S.take("--filter", Value)) {
      Opts.Filter = Value;
    } else if (S.take("--json-out", Value)) {
      if (S.ok() && !ensureParentDir(Value)) {
        fprintf(stderr,
                "error: --json-out: cannot create output directory for "
                "'%s'\n",
                Value.c_str());
        S.fail();
      }
      Opts.JsonOutPath = Value;
    } else {
      S.keepUnknown();
    }
  }
  return S.ok();
}

/// Standard bench main() entry: strips the obs flags into the process-wide
/// ObsConfig, then the uniform bench flags; exits on anything malformed.
/// Also forces the environment knobs to parse once, so a bad HPMVM_SCALE
/// fails before any experiment runs.
inline BenchOptions init(int &Argc, char **Argv) {
  if (!parseObsFlags(Argc, Argv))
    exit(2);
  BenchOptions Opts;
  if (!parseBenchFlags(Argc, Argv, Opts))
    exit(2);
  envSeed();
  envUint("HPMVM_SCALE", 100);
  if (const char *Env = getenv("HPMVM_WORKLOADS")) {
    std::vector<std::string> Names;
    std::string Error;
    if (!parseWorkloadList(Env, Names, Error)) {
      fprintf(stderr, "error: HPMVM_WORKLOADS: %s\n", Error.c_str());
      exit(2);
    }
  }
  return Opts;
}

/// Maps the bench flags onto suite execution options. --filter is applied
/// to the workload axis by selectedWorkloads(), not as a label filter, so
/// tables stay dense.
inline SuiteOptions suiteOptions(const BenchOptions &Opts) {
  SuiteOptions S;
  S.Jobs = Opts.Jobs;
  return S;
}

/// Writes the --json-out document for a suite-shaped bench (no-op when the
/// flag was not given); exits on I/O failure so CI catches it.
inline void maybeWriteJson(const BenchOptions &Opts, const char *Bench,
                           const SuiteResults &Results) {
  if (Opts.JsonOutPath.empty())
    return;
  if (!writeSuiteJsonFile(Opts.JsonOutPath, Bench, Results))
    exit(1);
}

/// The custom-driver flavor (fig7 etc.): explicit labeled results.
inline void maybeWriteJson(const BenchOptions &Opts, const char *Bench,
                           const std::vector<LabeledResult> &Runs) {
  if (Opts.JsonOutPath.empty())
    return;
  if (!writeRunsJsonFile(Opts.JsonOutPath, Bench, Runs))
    exit(1);
}

/// Standard banner: which experiment, which scale/seed, how to read it.
inline void banner(const char *Title, const char *PaperRef, uint32_t Scale,
                   const char *ShapeNote) {
  printf("=== %s ===\n", Title);
  printf("Reproduces: %s\n", PaperRef);
  printf("Scale: %u%% of default data sizes, seed %llu "
         "(HPMVM_SCALE / HPMVM_SEED / HPMVM_WORKLOADS to override)\n",
         Scale, static_cast<unsigned long long>(envSeed()));
  printf("Expected shape: %s\n\n", ShapeNote);
}

/// Prints a table and its CSV mirror.
inline void emit(TableWriter &T, const char *CsvTag) {
  T.print(stdout);
  printf("\nCSV (%s):\n", CsvTag);
  T.printCsv(stdout);
  printf("\n");
}

/// Percent formatting of a ratio-1 (e.g. 0.861 -> "-13.9%").
inline std::string pct(double Ratio) { return asPercent(Ratio - 1.0); }

} // namespace hpmvm::bench

#endif // HPMVM_BENCH_BENCHCOMMON_H
