//===-- bench/ablation_coalloc.cpp - Design-choice ablations --------------===//
//
// Ablations for the design choices DESIGN.md calls out, all on db at 4x
// heap (L1 misses vs the no-coalloc baseline):
//
//   A. Pair-size ceiling: 256 B / 1 KB / 4 KB. db's pairs are ~100 bytes,
//      so the ceiling barely matters for db but demonstrates the knob;
//      pseudojbb's >192-byte pairs vanish under a 128-byte ceiling.
//   B. Hot-field threshold: 1 / 2 / 8 / 32 sampled misses. Too high and
//      co-allocation starts too late (or never, at coarse intervals).
//   C. Interval randomization on/off: with periodic access patterns a
//      non-randomized interval can alias and bias per-field attribution.
//   D. Event driver: L1 misses vs DTLB misses. The paper: "Using TLB
//      misses as driver for the optimization decisions does not improve
//      the results."
//   E. What to do with the feedback: co-allocation vs prefetch injection
//      (Adl-Tabatabai et al.-style) vs both, on db.
//   F. What signal to use: miss-driven (this paper) vs access-frequency-
//      driven placement (online object reordering-style).
//   G. Pipeline variants: the paper's single consumer over one event kind
//      vs a four-consumer pipeline (coalloc + phase + prefetch +
//      frequency) over two multiplexed event kinds, with per-consumer
//      sample counts from the run's metrics snapshot.
//   H. Decision layer: the legacy autonomous consumers vs the policy
//      engine (classify -> score -> apply -> gate -> accept/revert/
//      blacklist), on db and pseudojbb, plus an adversarial policy run
//      with a forced co-allocation gap so the gate's revert + blacklist
//      path is exercised deterministically.
//
// Parallel structure: every run that only needs its RunConfig goes into
// one flat batch executed by runExperiments (baselines + A + B + D +
// F-miss + G); the runs that must wire observers or advisors into a live
// Experiment (C, E, F-frequency) form a second parallelFor batch. Both
// collect by fixed index, so tables are identical at any --jobs. Export
// paths get the suite layer's ".runNNN" index suffix so --metrics-out
// yields one snapshot per run instead of one racy file.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/FrequencyAdvisor.h"
#include "core/PrefetchInjector.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

RunConfig base(const char *Workload, uint32_t Scale) {
  RunConfig C;
  C.Workload = Workload;
  C.Params.ScalePercent = Scale;
  C.Params.Seed = envSeed();
  C.HeapFactor = 4.0;
  return C;
}

RunConfig coalloc(const char *Workload, uint32_t Scale) {
  RunConfig C = base(Workload, Scale);
  C.Monitoring = true;
  C.Coallocation = true;
  C.Monitor.SamplingInterval = 5000;
  return C;
}

constexpr uint32_t kCeilings[] = {128, 256, 1024, 4096};
constexpr uint64_t kThresholds[] = {1, 2, 8, 32};

// Flat-batch indices (baselines + A + B + D + F-miss).
enum : size_t {
  kDbBase = 0,
  kJbbBase,
  kCeilingFirst, // 4 ceilings x {db, pseudojbb}
  kThresholdFirst = kCeilingFirst + 8, // 4 thresholds, db
  kEventFirst = kThresholdFirst + 4,   // {L1DMiss, DtlbMiss}, db
  kMissSignal = kEventFirst + 2,       // F: miss-driven db
  kPipelineMulti = kMissSignal + 1,    // G: 4 consumers, 2 muxed kinds
  kLegacyJbb,                          // H: legacy coalloc, pseudojbb
  kPolicyDb,                           // H: policy engine, db
  kPolicyJbb,                          // H: policy engine, pseudojbb
  kPolicyGap,                          // H: policy engine + forced gap
  kNumPlain
};

RunConfig policy(const char *Workload, uint32_t Scale) {
  RunConfig C = base(Workload, Scale);
  C.Monitoring = true;
  C.PolicyEngine = true; // Installs the default 3-kind mux rotation.
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(60);
  banner("Ablations: co-allocation design choices",
         "DESIGN.md section 5 (not a paper figure)", Scale,
         "pair ceiling gates pseudojbb not db; low thresholds engage "
         "earlier; randomization costs nothing");

  // --- The flat batch: plain runs identified by RunConfig alone -------------
  std::vector<RunConfig> Plain(kNumPlain);
  Plain[kDbBase] = base("db", Scale);
  Plain[kJbbBase] = base("pseudojbb", Scale);
  for (size_t I = 0; I != 4; ++I) {
    RunConfig Db = coalloc("db", Scale);
    Db.MaxCoallocPairBytes = kCeilings[I];
    Plain[kCeilingFirst + 2 * I] = Db;
    RunConfig Jbb = coalloc("pseudojbb", Scale);
    Jbb.MaxCoallocPairBytes = kCeilings[I];
    Plain[kCeilingFirst + 2 * I + 1] = Jbb;
  }
  for (size_t I = 0; I != 4; ++I) {
    RunConfig Db = coalloc("db", Scale);
    Db.Monitor.Advisor.MinMissSamples = kThresholds[I];
    Plain[kThresholdFirst + I] = Db;
  }
  {
    RunConfig L1 = coalloc("db", Scale);
    L1.Monitor.Event = HpmEventKind::L1DMiss;
    Plain[kEventFirst] = L1;
    RunConfig Tlb = coalloc("db", Scale);
    Tlb.Monitor.Event = HpmEventKind::DtlbMiss;
    // DTLB misses are ~20x rarer; scale the interval so sample counts
    // stay comparable.
    Tlb.Monitor.SamplingInterval = 250;
    Plain[kEventFirst + 1] = Tlb;
  }
  Plain[kMissSignal] = coalloc("db", Scale);
  {
    // G: the full multi-consumer pipeline over two multiplexed kinds.
    RunConfig Multi = coalloc("db", Scale);
    Multi.Monitor.Events = {{HpmEventKind::L1DMiss, 5000},
                            {HpmEventKind::DtlbMiss, 500}};
    Multi.PhaseConsumer = true;
    Multi.PrefetchConsumer = true;
    Multi.PrefetchController = true;
    Multi.FrequencyConsumer = true;
    Plain[kPipelineMulti] = Multi;
  }
  {
    // H: decision layers. The forced-gap run deliberately sabotages the
    // coalloc action (the Figure 8 lever), so its gate regresses, reverts,
    // blacklists, and the engine falls through to the next action.
    Plain[kLegacyJbb] = coalloc("pseudojbb", Scale);
    Plain[kPolicyDb] = policy("db", Scale);
    Plain[kPolicyJbb] = policy("pseudojbb", Scale);
    RunConfig Gap = policy("db", Scale);
    Gap.Monitor.Advisor.ForcedGapBytes = 128;
    Plain[kPolicyGap] = Gap;
  }
  for (size_t I = 0; I != Plain.size(); ++I) {
    Plain[I].Obs = resolveObsConfig(Plain[I].Obs);
    if (Plain[I].Obs.exportsAnything())
      Plain[I].Obs = uniquifySuiteObsPaths(Plain[I].Obs, I);
  }
  std::vector<RunResult> PR = runExperiments(Plain, Opts.Jobs);
  const RunResult &DbBase = PR[kDbBase];
  const RunResult &JbbBase = PR[kJbbBase];

  // --- The custom batch: runs that wire into a live Experiment --------------
  // [0..1] C randomization on/off, [2..4] E modes, [5] F frequency-driven.
  struct CustomOut {
    RunResult R;
    uint64_t Attributed = 0; // C only.
    uint64_t FreqPairs = 0;  // F only.
  };
  CustomOut Custom[6];
  parallelFor(6, Opts.Jobs, [&](size_t I) {
    CustomOut &Out = Custom[I];
    auto uniquify = [&](RunConfig &C) {
      C.Obs = resolveObsConfig(C.Obs);
      if (C.Obs.exportsAnything())
        C.Obs = uniquifySuiteObsPaths(C.Obs, kNumPlain + I);
    };
    if (I < 2) { // C: interval randomization.
      RunConfig Db = coalloc("db", Scale);
      Db.Monitor.RandomizeIntervalBits = I == 0;
      uniquify(Db);
      Experiment E(Db);
      E.run();
      Out.R = E.result();
      Out.Attributed = E.monitor()->stats().SamplesAttributed;
    } else if (I < 5) { // E: what to do with the feedback.
      int Mode = static_cast<int>(I) - 2;
      RunConfig Db = coalloc("db", Scale);
      Db.Coallocation = Mode == 0 || Mode == 2;
      uniquify(Db);
      Experiment E(Db);
      bool Injected = false;
      if (Mode >= 1) {
        // Inject prefetches once the miss profile is established.
        E.monitor()->setPeriodObserver([&] {
          if (!Injected && E.monitor()->missTable().totalMisses() >= 16) {
            Injected = true;
            PrefetchInjector::injectHotPrefetches(
                E.vm(), E.monitor()->missTable(), /*MinMisses=*/4);
          }
        });
      }
      E.run();
      Out.R = E.result();
    } else { // F: frequency-driven placement, no HPM at all.
      RunConfig Db = base("db", Scale);
      Db.ProfileFieldAccess = true;
      uniquify(Db);
      Experiment E(Db);
      FrequencyAdvisor Advisor(E.vm(), /*MinAccesses=*/2000);
      E.collector().setPlacementAdvisor(&Advisor);
      E.run();
      Out.R = E.result();
      Out.FreqPairs = Advisor.coallocationCount();
    }
  });

  // --- A: pair-size ceiling -------------------------------------------------
  {
    TableWriter T({"ceiling", "db pairs", "db L1 vs base",
                   "pseudojbb pairs", "pseudojbb L1 vs base"});
    for (size_t I = 0; I != 4; ++I) {
      const RunResult &RDb = PR[kCeilingFirst + 2 * I];
      const RunResult &RJbb = PR[kCeilingFirst + 2 * I + 1];
      T.addRow({formatString("%u B", kCeilings[I]),
                withThousandsSep(RDb.CoallocatedPairs),
                pct(static_cast<double>(RDb.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                withThousandsSep(RJbb.CoallocatedPairs),
                pct(static_cast<double>(RJbb.Memory.L1Misses) /
                    JbbBase.Memory.L1Misses)});
    }
    printf("--- A: pair-size ceiling ---\n");
    emit(T, "ablation_ceiling");
  }

  // --- B: hot-field threshold -----------------------------------------------
  {
    TableWriter T({"threshold", "pairs", "L1 vs base", "time vs base"});
    for (size_t I = 0; I != 4; ++I) {
      const RunResult &R = PR[kThresholdFirst + I];
      T.addRow({withThousandsSep(kThresholds[I]),
                withThousandsSep(R.CoallocatedPairs),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    printf("--- B: hot-field sample threshold ---\n");
    emit(T, "ablation_threshold");
  }

  // --- C: interval randomization ---------------------------------------------
  {
    TableWriter T({"randomized low bits", "samples", "attributed",
                   "pairs"});
    for (size_t I = 0; I != 2; ++I)
      T.addRow({I == 0 ? "on" : "off",
                withThousandsSep(Custom[I].R.SamplesTaken),
                withThousandsSep(Custom[I].Attributed),
                withThousandsSep(Custom[I].R.CoallocatedPairs)});
    printf("--- C: sampling-interval randomization ---\n");
    emit(T, "ablation_randomization");
  }

  // --- D: event driver (L1 vs DTLB) ------------------------------------------
  {
    TableWriter T({"event driver", "samples", "pairs", "L1 vs base",
                   "time vs base"});
    for (size_t I = 0; I != 2; ++I) {
      const RunResult &R = PR[kEventFirst + I];
      HpmEventKind Kind =
          I == 0 ? HpmEventKind::L1DMiss : HpmEventKind::DtlbMiss;
      T.addRow({eventKindName(Kind), withThousandsSep(R.SamplesTaken),
                withThousandsSep(R.CoallocatedPairs),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    printf("--- D: event driver (paper: TLB-driven does not improve on "
           "L1-driven) ---\n");
    emit(T, "ablation_event");
  }

  // --- E: co-allocation vs prefetch injection --------------------------------
  {
    TableWriter T({"policy", "pairs", "prefetches issued", "L1 vs base",
                   "time vs base"});
    for (int Mode = 0; Mode != 3; ++Mode) {
      const RunResult &R = Custom[2 + Mode].R;
      T.addRow({Mode == 0   ? "co-allocation"
                : Mode == 1 ? "prefetch injection"
                            : "both",
                withThousandsSep(R.CoallocatedPairs),
                withThousandsSep(R.Memory.SwPrefetches),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    printf("--- E: what to do with the feedback (prefetching hides "
           "latency; co-allocation removes the misses) ---\n");
    emit(T, "ablation_policy");
  }

  // --- F: miss-driven vs frequency-driven placement ---------------------------
  {
    TableWriter T({"signal", "pairs", "L1 vs base", "time vs base"});
    const RunResult &Miss = PR[kMissSignal];
    T.addRow({"cache misses (paper)",
              withThousandsSep(Miss.CoallocatedPairs),
              pct(static_cast<double>(Miss.Memory.L1Misses) /
                  DbBase.Memory.L1Misses),
              pct(static_cast<double>(Miss.TotalCycles) /
                  DbBase.TotalCycles)});
    const CustomOut &Freq = Custom[5];
    T.addRow({"access frequency", withThousandsSep(Freq.FreqPairs),
              pct(static_cast<double>(Freq.R.Memory.L1Misses) /
                  DbBase.Memory.L1Misses),
              pct(static_cast<double>(Freq.R.TotalCycles) /
                  DbBase.TotalCycles)});
    printf("--- F: what signal drives placement ---\n");
    emit(T, "ablation_signal");
  }

  // --- G: pipeline variants ---------------------------------------------------
  {
    TableWriter T({"pipeline", "muxed kinds", "dispatched", "coalloc",
                   "phase", "prefetch", "frequency", "pairs",
                   "time vs base"});
    auto Row = [&](const char *Label, const RunResult &R, size_t Kinds) {
      const MetricsSnapshot &M = R.Metrics;
      auto Cnt = [&](const char *Name) {
        return withThousandsSep(M.counter(Name));
      };
      T.addRow({Label, withThousandsSep(Kinds),
                Cnt("pipeline.dispatched"),
                Cnt("pipeline.coalloc.samples"),
                Cnt("pipeline.phase.samples"),
                Cnt("pipeline.prefetch.samples"),
                Cnt("pipeline.frequency.samples"),
                withThousandsSep(R.CoallocatedPairs),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    };
    Row("single consumer (paper)", PR[kMissSignal], 1);
    Row("4 consumers, muxed", PR[kPipelineMulti], 2);
    printf("--- G: pipeline variants (multi-consumer dispatch over "
           "multiplexed events) ---\n");
    emit(T, "ablation_pipeline");
    printf("multi-consumer run: %s mux rotations, %s phase changes, %s "
           "prefetch insertions, %s AOS hot-method reports\n",
           withThousandsSep(
               PR[kPipelineMulti].Metrics.counter("mux.rotations"))
               .c_str(),
           withThousandsSep(
               PR[kPipelineMulti].Metrics.counter("phase.changes"))
               .c_str(),
           withThousandsSep(
               PR[kPipelineMulti].Metrics.counter("prefetch.insertions"))
               .c_str(),
           withThousandsSep(
               PR[kPipelineMulti].Metrics.counter("aos.hpm_hot_reports"))
               .c_str());
  }

  // --- H: legacy consumers vs the policy engine -------------------------------
  {
    TableWriter T({"decision layer", "workload", "pairs", "applies",
                   "accepts", "reverts", "blacklists", "L1 vs base",
                   "time vs base"});
    auto Row = [&](const char *Label, const char *Workload,
                   const RunResult &R, const RunResult &Base) {
      const MetricsSnapshot &M = R.Metrics;
      auto Cnt = [&](const char *Name) {
        return withThousandsSep(M.counter(Name));
      };
      T.addRow({Label, Workload, withThousandsSep(R.CoallocatedPairs),
                Cnt("policy.applies"), Cnt("policy.accepts"),
                Cnt("policy.reverts"), Cnt("policy.blacklists"),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    Base.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    Base.TotalCycles)});
    };
    Row("legacy consumers", "db", PR[kMissSignal], DbBase);
    Row("policy engine", "db", PR[kPolicyDb], DbBase);
    Row("legacy consumers", "pseudojbb", PR[kLegacyJbb], JbbBase);
    Row("policy engine", "pseudojbb", PR[kPolicyJbb], JbbBase);
    Row("policy engine + forced gap", "db", PR[kPolicyGap], DbBase);
    printf("--- H: decision layer (legacy autonomous consumers vs the "
           "guarded policy engine; the forced-gap run exercises "
           "revert + blacklist) ---\n");
    emit(T, "ablation_decision_layer");
    const MetricsSnapshot &Gap = PR[kPolicyGap].Metrics;
    printf("policy journals: db %s records, forced-gap %s records (%s "
           "reverted, %s blacklisted)\n",
           withThousandsSep(PR[kPolicyDb].Journal.size()).c_str(),
           withThousandsSep(PR[kPolicyGap].Journal.size()).c_str(),
           withThousandsSep(Gap.counter("policy.reverts")).c_str(),
           withThousandsSep(Gap.counter("policy.blacklists")).c_str());
  }

  maybeWriteJson(Opts, "ablation_coalloc",
                 {{"db/base", DbBase},
                  {"pseudojbb/base", JbbBase},
                  {"db/coalloc", PR[kMissSignal]},
                  {"db/pipeline-multi", PR[kPipelineMulti]},
                  {"db/policy", PR[kPolicyDb]},
                  {"pseudojbb/policy", PR[kPolicyJbb]},
                  {"db/policy-forced-gap", PR[kPolicyGap]}});
  return 0;
}
