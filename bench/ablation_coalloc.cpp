//===-- bench/ablation_coalloc.cpp - Design-choice ablations --------------===//
//
// Ablations for the design choices DESIGN.md calls out, all on db at 4x
// heap (L1 misses vs the no-coalloc baseline):
//
//   A. Pair-size ceiling: 256 B / 1 KB / 4 KB. db's pairs are ~100 bytes,
//      so the ceiling barely matters for db but demonstrates the knob;
//      pseudojbb's >192-byte pairs vanish under a 128-byte ceiling.
//   B. Hot-field threshold: 1 / 2 / 8 / 32 sampled misses. Too high and
//      co-allocation starts too late (or never, at coarse intervals).
//   C. Interval randomization on/off: with periodic access patterns a
//      non-randomized interval can alias and bias per-field attribution.
//   D. Event driver: L1 misses vs DTLB misses. The paper: "Using TLB
//      misses as driver for the optimization decisions does not improve
//      the results."
//   E. What to do with the feedback: co-allocation vs prefetch injection
//      (Adl-Tabatabai et al.-style) vs both, on db.
//   F. What signal to use: miss-driven (this paper) vs access-frequency-
//      driven placement (online object reordering-style).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/FrequencyAdvisor.h"
#include "core/PrefetchInjector.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

RunConfig base(const char *Workload, uint32_t Scale) {
  RunConfig C;
  C.Workload = Workload;
  C.Params.ScalePercent = Scale;
  C.Params.Seed = envSeed();
  C.HeapFactor = 4.0;
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::initObs(Argc, Argv);
  uint32_t Scale = envScale(60);
  banner("Ablations: co-allocation design choices",
         "DESIGN.md section 5 (not a paper figure)", Scale,
         "pair ceiling gates pseudojbb not db; low thresholds engage "
         "earlier; randomization costs nothing");

  RunResult DbBase = runExperiment(base("db", Scale));
  RunResult JbbBase = runExperiment(base("pseudojbb", Scale));

  // --- A: pair-size ceiling -------------------------------------------------
  {
    TableWriter T({"ceiling", "db pairs", "db L1 vs base",
                   "pseudojbb pairs", "pseudojbb L1 vs base"});
    for (uint32_t Ceiling : {128u, 256u, 1024u, 4096u}) {
      RunConfig Db = base("db", Scale);
      Db.Monitoring = true;
      Db.Coallocation = true;
      Db.Monitor.SamplingInterval = 5000;
      Db.MaxCoallocPairBytes = Ceiling;
      RunResult RDb = runExperiment(Db);

      RunConfig Jbb = base("pseudojbb", Scale);
      Jbb.Monitoring = true;
      Jbb.Coallocation = true;
      Jbb.Monitor.SamplingInterval = 5000;
      Jbb.MaxCoallocPairBytes = Ceiling;
      RunResult RJbb = runExperiment(Jbb);

      T.addRow({formatString("%u B", Ceiling),
                withThousandsSep(RDb.CoallocatedPairs),
                pct(static_cast<double>(RDb.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                withThousandsSep(RJbb.CoallocatedPairs),
                pct(static_cast<double>(RJbb.Memory.L1Misses) /
                    JbbBase.Memory.L1Misses)});
    }
    printf("--- A: pair-size ceiling ---\n");
    emit(T, "ablation_ceiling");
  }

  // --- B: hot-field threshold -----------------------------------------------
  {
    TableWriter T({"threshold", "pairs", "L1 vs base", "time vs base"});
    for (uint64_t Th : {1ull, 2ull, 8ull, 32ull}) {
      RunConfig Db = base("db", Scale);
      Db.Monitoring = true;
      Db.Coallocation = true;
      Db.Monitor.SamplingInterval = 5000;
      Db.Monitor.Advisor.MinMissSamples = Th;
      RunResult R = runExperiment(Db);
      T.addRow({withThousandsSep(Th), withThousandsSep(R.CoallocatedPairs),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    printf("--- B: hot-field sample threshold ---\n");
    emit(T, "ablation_threshold");
  }

  // --- C: interval randomization ---------------------------------------------
  {
    TableWriter T({"randomized low bits", "samples", "attributed",
                   "pairs"});
    for (bool Rand : {true, false}) {
      RunConfig Db = base("db", Scale);
      Db.Monitoring = true;
      Db.Coallocation = true;
      Db.Monitor.SamplingInterval = 5000;
      Db.Monitor.RandomizeIntervalBits = Rand;
      Experiment E(Db);
      E.run();
      RunResult R = E.result();
      T.addRow({Rand ? "on" : "off", withThousandsSep(R.SamplesTaken),
                withThousandsSep(E.monitor()->stats().SamplesAttributed),
                withThousandsSep(R.CoallocatedPairs)});
    }
    printf("--- C: sampling-interval randomization ---\n");
    emit(T, "ablation_randomization");
  }

  // --- D: event driver (L1 vs DTLB) ------------------------------------------
  {
    TableWriter T({"event driver", "samples", "pairs", "L1 vs base",
                   "time vs base"});
    for (HpmEventKind Kind :
         {HpmEventKind::L1DMiss, HpmEventKind::DtlbMiss}) {
      RunConfig Db = base("db", Scale);
      Db.Monitoring = true;
      Db.Coallocation = true;
      Db.Monitor.Event = Kind;
      // DTLB misses are ~20x rarer; scale the interval so sample counts
      // stay comparable.
      Db.Monitor.SamplingInterval =
          Kind == HpmEventKind::L1DMiss ? 5000 : 250;
      RunResult R = runExperiment(Db);
      T.addRow({eventKindName(Kind), withThousandsSep(R.SamplesTaken),
                withThousandsSep(R.CoallocatedPairs),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    printf("--- D: event driver (paper: TLB-driven does not improve on "
           "L1-driven) ---\n");
    emit(T, "ablation_event");
  }

  // --- E: co-allocation vs prefetch injection --------------------------------
  {
    TableWriter T({"policy", "pairs", "prefetches issued", "L1 vs base",
                   "time vs base"});
    for (int Mode = 0; Mode != 3; ++Mode) {
      RunConfig Db = base("db", Scale);
      Db.Monitoring = true;
      Db.Coallocation = Mode == 0 || Mode == 2;
      Db.Monitor.SamplingInterval = 5000;
      Experiment E(Db);
      bool Injected = false;
      if (Mode >= 1) {
        // Inject prefetches once the miss profile is established.
        E.monitor()->setPeriodObserver([&] {
          if (!Injected && E.monitor()->missTable().totalMisses() >= 16) {
            Injected = true;
            PrefetchInjector::injectHotPrefetches(
                E.vm(), E.monitor()->missTable(), /*MinMisses=*/4);
          }
        });
      }
      E.run();
      RunResult R = E.result();
      T.addRow({Mode == 0   ? "co-allocation"
                : Mode == 1 ? "prefetch injection"
                            : "both",
                withThousandsSep(R.CoallocatedPairs),
                withThousandsSep(R.Memory.SwPrefetches),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    printf("--- E: what to do with the feedback (prefetching hides "
           "latency; co-allocation removes the misses) ---\n");
    emit(T, "ablation_policy");
  }

  // --- F: miss-driven vs frequency-driven placement ---------------------------
  {
    TableWriter T({"signal", "pairs", "L1 vs base", "time vs base"});
    // Miss-driven: the normal pipeline.
    {
      RunConfig Db = base("db", Scale);
      Db.Monitoring = true;
      Db.Coallocation = true;
      Db.Monitor.SamplingInterval = 5000;
      RunResult R = runExperiment(Db);
      T.addRow({"cache misses (paper)",
                withThousandsSep(R.CoallocatedPairs),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    // Frequency-driven: software profiling, no HPM at all.
    {
      RunConfig Db = base("db", Scale);
      Db.ProfileFieldAccess = true;
      Experiment E(Db);
      FrequencyAdvisor Advisor(E.vm(), /*MinAccesses=*/2000);
      E.collector().setPlacementAdvisor(&Advisor);
      E.run();
      RunResult R = E.result();
      T.addRow({"access frequency",
                withThousandsSep(Advisor.coallocationCount()),
                pct(static_cast<double>(R.Memory.L1Misses) /
                    DbBase.Memory.L1Misses),
                pct(static_cast<double>(R.TotalCycles) /
                    DbBase.TotalCycles)});
    }
    printf("--- F: what signal drives placement ---\n");
    emit(T, "ablation_signal");
  }
  return 0;
}
