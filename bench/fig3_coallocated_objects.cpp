//===-- bench/fig3_coallocated_objects.cpp - Paper Figure 3 ---------------===//
//
// Figure 3: "Number of co-allocated objects at different sampling
// intervals (heap size = 4x min heap size)", log scale in the paper.
//
// Shape to reproduce: compress and mpegaudio co-allocate nothing (their
// data lives in large arrays); the big co-allocators (db, pseudojbb,
// hsqldb, luindex, pmd) are insensitive to the interval (the largest
// interval already covers them); small co-allocators are sensitive.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

// The paper's 25K/50K/100K intervals, divided by the run-length scale
// factor (~10x shorter runs; DESIGN.md section 6) so the sample coverage
// per run matches the paper's.
SuiteVariant coalloc(const char *Name, uint64_t Interval) {
  return {Name, [Interval](RunConfig &C) {
            C.Monitoring = true;
            C.Coallocation = true;
            C.Monitor.SamplingInterval = Interval;
          }};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(50);
  banner("Figure 3: co-allocated objects per sampling interval",
         "Figure 3 (pairs co-allocated at 25K/50K/100K)", Scale,
         "0 for compress/mpegaudio; large counts stable across intervals "
         "for db/pseudojbb/hsqldb/luindex/pmd; small counts "
         "interval-sensitive");

  SuiteSpec S;
  S.Workloads = selectedWorkloads(Opts.Filter);
  S.Params.ScalePercent = Scale;
  S.Params.Seed = envSeed();
  S.Repeat = Opts.Repeat;
  S.Variants = {coalloc("25K", 2500), coalloc("50K", 5000),
                coalloc("100K", 10000)};
  SuiteResults R = runSuite(S, suiteOptions(Opts));

  TableWriter T({"program", "25K/10", "50K/10", "100K/10"});
  for (size_t W = 0; W != S.Workloads.size(); ++W) {
    std::vector<std::string> Row = {S.Workloads[W]};
    for (size_t V = 0; V != S.Variants.size(); ++V)
      Row.push_back(withThousandsSep(R.at(W, 0, 0, V).CoallocatedPairs));
    T.addRow(std::move(Row));
  }
  emit(T, "fig3");
  maybeWriteJson(Opts, "fig3", R);
  return 0;
}
