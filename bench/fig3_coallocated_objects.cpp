//===-- bench/fig3_coallocated_objects.cpp - Paper Figure 3 ---------------===//
//
// Figure 3: "Number of co-allocated objects at different sampling
// intervals (heap size = 4x min heap size)", log scale in the paper.
//
// Shape to reproduce: compress and mpegaudio co-allocate nothing (their
// data lives in large arrays); the big co-allocators (db, pseudojbb,
// hsqldb, luindex, pmd) are insensitive to the interval (the largest
// interval already covers them); small co-allocators are sensitive.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  bench::initObs(Argc, Argv);
  uint32_t Scale = envScale(50);
  banner("Figure 3: co-allocated objects per sampling interval",
         "Figure 3 (pairs co-allocated at 25K/50K/100K)", Scale,
         "0 for compress/mpegaudio; large counts stable across intervals "
         "for db/pseudojbb/hsqldb/luindex/pmd; small counts "
         "interval-sensitive");

  TableWriter T({"program", "25K/10", "50K/10", "100K/10"});
  for (const std::string &Name : selectedWorkloads()) {
    std::vector<std::string> Row = {Name};
    // The paper's 25K/50K/100K intervals, divided by the run-length
    // scale factor (~10x shorter runs; DESIGN.md section 6) so the sample
    // coverage per run matches the paper's.
    for (uint64_t Interval : {2500ull, 5000ull, 10000ull}) {
      RunConfig C;
      C.Workload = Name;
      C.Params.ScalePercent = Scale;
      C.Params.Seed = envSeed();
      C.HeapFactor = 4.0;
      C.Monitoring = true;
      C.Coallocation = true;
      C.Monitor.SamplingInterval = Interval;
      RunResult R = runExperiment(C);
      Row.push_back(withThousandsSep(R.CoallocatedPairs));
    }
    T.addRow(std::move(Row));
  }
  emit(T, "fig3");
  return 0;
}
