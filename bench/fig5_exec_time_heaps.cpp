//===-- bench/fig5_exec_time_heaps.cpp - Paper Figure 5 -------------------===//
//
// Figure 5: "Execution time relative to the baseline for different heap
// sizes (sampling interval is auto-selected, heap size from 1-4x min heap
// size)." Co-allocating configuration vs plain baseline at each heap.
//
// Shape to reproduce: db/pseudojbb/bloat speed up at large heaps; several
// programs are slightly slowed (~ the sampling overhead, worst ~-2%); at
// the minimum heap most speedups shrink or invert (co-allocation's
// internal fragmentation dominates) while db keeps a speedup.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  bench::initObs(Argc, Argv);
  uint32_t Scale = envScale(40);
  const double Heaps[] = {1.0, 1.5, 2.0, 3.0, 4.0};
  banner("Figure 5: execution time vs baseline across heap sizes",
         "Figure 5 (normalized time, heap 1x-4x, auto interval)", Scale,
         "speedups concentrate at large heaps; small heaps pay "
         "co-allocation's fragmentation; non-beneficiaries pay ~sampling "
         "overhead");

  TableWriter T({"program", "1x", "1.5x", "2x", "3x", "4x"});
  for (const std::string &Name : selectedWorkloads()) {
    std::vector<std::string> Row = {Name};
    for (double H : Heaps) {
      RunConfig Base;
      Base.Workload = Name;
      Base.Params.ScalePercent = Scale;
      Base.Params.Seed = envSeed();
      Base.HeapFactor = H;
      RunResult B = runExperiment(Base);

      RunConfig Opt = Base;
      Opt.Monitoring = true;
      Opt.Coallocation = true;
      Opt.Monitor.AutoInterval = true;
      Opt.Monitor.TargetSamplesPerSec = 2000; // Scaled; DESIGN.md sec. 6.
      Opt.Monitor.SamplingInterval = 10000;
      RunResult O = runExperiment(Opt);

      double Ratio = static_cast<double>(O.TotalCycles) /
                     static_cast<double>(B.TotalCycles);
      Row.push_back(formatString("%.3f", Ratio));
    }
    T.addRow(std::move(Row));
  }
  emit(T, "fig5");
  printf("(values < 1.0 mean the co-allocating configuration is faster)\n");
  return 0;
}
