//===-- bench/fig5_exec_time_heaps.cpp - Paper Figure 5 -------------------===//
//
// Figure 5: "Execution time relative to the baseline for different heap
// sizes (sampling interval is auto-selected, heap size from 1-4x min heap
// size)." Co-allocating configuration vs plain baseline at each heap.
//
// Shape to reproduce: db/pseudojbb/bloat speed up at large heaps; several
// programs are slightly slowed (~ the sampling overhead, worst ~-2%); at
// the minimum heap most speedups shrink or invert (co-allocation's
// internal fragmentation dominates) while db keeps a speedup.
//
// The full grid is 16 workloads x 5 heaps x 2 configs = 160 independent
// runs; --jobs N executes them on N threads with bit-identical output.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(40);
  banner("Figure 5: execution time vs baseline across heap sizes",
         "Figure 5 (normalized time, heap 1x-4x, auto interval)", Scale,
         "speedups concentrate at large heaps; small heaps pay "
         "co-allocation's fragmentation; non-beneficiaries pay ~sampling "
         "overhead");

  SuiteSpec S;
  S.Workloads = selectedWorkloads(Opts.Filter);
  S.HeapFactors = {1.0, 1.5, 2.0, 3.0, 4.0};
  S.Params.ScalePercent = Scale;
  S.Params.Seed = envSeed();
  S.Repeat = Opts.Repeat;
  S.Variants = {
      {"base", nullptr},
      {"coalloc",
       [](RunConfig &C) {
         C.Monitoring = true;
         C.Coallocation = true;
         C.Monitor.AutoInterval = true;
         C.Monitor.TargetSamplesPerSec = 2000; // Scaled; DESIGN.md sec. 6.
         C.Monitor.SamplingInterval = 10000;
       }},
  };
  SuiteResults R = runSuite(S, suiteOptions(Opts));

  auto Cycles = [](const RunResult &Res) {
    return static_cast<double>(Res.TotalCycles);
  };

  TableWriter T({"program", "1x", "1.5x", "2x", "3x", "4x"});
  for (size_t W = 0; W != S.Workloads.size(); ++W) {
    std::vector<std::string> Row = {S.Workloads[W]};
    for (size_t H = 0; H != S.HeapFactors.size(); ++H) {
      double Ratio = R.mean(W, H, 0, 1, Cycles) / R.mean(W, H, 0, 0, Cycles);
      Row.push_back(formatString("%.3f", Ratio));
    }
    T.addRow(std::move(Row));
  }
  emit(T, "fig5");
  printf("(values < 1.0 mean the co-allocating configuration is faster)\n");
  maybeWriteJson(Opts, "fig5", R);
  return 0;
}
