//===-- bench/fleet_scaling.cpp - Multi-tenant fleet scaling --------------===//
//
// Fleet scaling: N servermix tenants under request traffic, sharing one
// PEBS unit through the PmuArbiter, with the policy engine making guarded
// per-tenant decisions from duty-cycle- and tenant-share-corrected rates.
//
// Sweeps the shard count (default 1, 4, 16, 64; override with
// --shards 1,8,32) x {nohpm, policy} and reports, per shard count, the
// per-tenant payoff of keeping the monitoring + policy loop on as the PMU
// is divided N ways: accepted optimizations per tenant, L1 misses per
// access vs the unmonitored fleet, and how the arbiter split the PMU.
//
// Each fleet is one sequential discrete-event run; --jobs parallelism is
// across (shards, variant) cells only, so all output -- including the
// --json-out document with per-tenant and fleet-wide rows -- is
// bit-identical for every job count.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/Fleet.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

struct Cell {
  uint32_t Shards = 1;
  bool Policy = false;
  std::string Label; ///< "s16/policy"
  FleetResult Result;
};

FleetConfig cellConfig(const Cell &C, uint32_t Scale) {
  FleetConfig F;
  F.Shards = C.Shards;
  F.Base.Workload = "servermix";
  F.Base.Params.ScalePercent = Scale;
  F.Base.Params.Seed = envSeed();
  F.Base.HeapFactor = 2.0;
  if (C.Policy) {
    F.Base.Monitoring = true;
    F.Base.PolicyEngine = true; // Default 3-kind mux rotation.
    // Request-serving runs drain samples in many small safepoint batches,
    // so classifier windows close far slower than in batch runs; shorten
    // them so the gate reaches verdicts within the traffic run.
    F.Base.Policy.Classifier.WindowPeriods = 2;
    F.Base.Policy.Classifier.MinWindowSamples = 2.0;
    // The miss rate climbs while the GC promotes the session table out of
    // the nursery; hold the first apply until the baseline reflects the
    // post-promotion plateau, or every action looks like a regression.
    // With a 1/N PMU share each window spans ~N times more virtual time,
    // so a short baseline already covers the ramp -- insisting on four
    // windows at 16 shards would push the verdict past the end of the run.
    F.Base.Policy.MinBaselineWindows = C.Shards >= 8 ? 2 : 4;
    // Same logic for the gate's post-apply warm-up: at 1/N duty one
    // classifier window is already far longer than a GC promotion cycle,
    // so the placement effect is visible in the first post-apply window.
    if (C.Shards >= 8)
      F.Base.Policy.Gate.WarmupPeriods = 0;
    // At 1/64 of the PMU the default mux intervals yield so few samples
    // per tenant that classification windows stop closing. A fleet
    // operator's countermeasure is denser sampling while the tenant holds
    // the unit -- the duty-cycle x tenant-share correction keeps the
    // estimated rates unbiased, and the overhead stays bounded because
    // sampling only runs during the tenant's small share.
    if (C.Shards >= 32)
      F.Base.Monitor.Events = {{HpmEventKind::L1DMiss, 1250},
                               {HpmEventKind::L2Miss, 250},
                               {HpmEventKind::DtlbMiss, 125}};
  }
  // Enough per-tenant busy time for the policy gates to resolve verdicts
  // (baseline + warmup + decision windows), at high utilization so the
  // PMU actually contends. Large fleets see fewer samples per tenant, so
  // their windows span more requests; give them proportionally more
  // traffic or the verdicts never land inside the run.
  F.TrafficCfg.RequestsPerTenant = C.Shards >= 8 ? 6144 : 4096;
  F.TrafficCfg.ArrivalRatePerSec = 200000.0;
  return F;
}

uint64_t countAccepts(const std::vector<DecisionRecord> &Journal) {
  uint64_t N = 0;
  for (const DecisionRecord &R : Journal)
    N += R.Kind == DecisionKind::Accept;
  return N;
}

double l1PerKAccess(const RunResult &R) {
  return R.Memory.Accesses ? 1e3 * static_cast<double>(R.Memory.L1Misses) /
                                 static_cast<double>(R.Memory.Accesses)
                           : 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  // --shards is this bench's own axis; strip it before the uniform flags
  // (bench::init rejects anything it does not know).
  std::vector<uint32_t> ShardCounts = {1, 4, 16, 64};
  {
    flags::ArgScanner S(Argc, Argv);
    std::string Value;
    while (S.next()) {
      if (S.take("--shards", Value)) {
        if (!S.ok())
          break;
        ShardCounts.clear();
        size_t Pos = 0;
        while (Pos <= Value.size()) {
          size_t Comma = Value.find(',', Pos);
          size_t End = Comma == std::string::npos ? Value.size() : Comma;
          std::string Item = Value.substr(Pos, End - Pos);
          uint64_t V = 0;
          if (!flags::parseUint(Item.c_str(), V) || V == 0 || V > 256) {
            fprintf(stderr,
                    "error: --shards wants a comma list of 1..256, got "
                    "'%s'\n",
                    Value.c_str());
            S.fail();
            break;
          }
          ShardCounts.push_back(static_cast<uint32_t>(V));
          if (Comma == std::string::npos)
            break;
          Pos = Comma + 1;
        }
      } else {
        S.keep();
      }
    }
    if (!S.ok())
      return 2;
  }
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(60);
  banner("Fleet scaling: multi-tenant shards under shared PEBS",
         "section 6 outlook: one monitoring facility, many clients "
         "(fleet extension; no single paper figure)",
         Scale,
         "per-tenant accepts stay positive and the policy fleet keeps an "
         "L1 miss-rate edge over nohpm even as the PMU is split 64 ways");

  std::vector<Cell> Cells;
  for (uint32_t N : ShardCounts)
    for (bool Policy : {false, true}) {
      Cell C;
      C.Shards = N;
      C.Policy = Policy;
      C.Label = formatString("s%u/%s", N, Policy ? "policy" : "nohpm");
      Cells.push_back(std::move(C));
    }

  parallelFor(Cells.size(), Opts.Jobs, [&](size_t I) {
    FleetConfig F = cellConfig(Cells[I], Scale);
    // Resolve the process-wide export paths and tag them with the cell
    // index before the fleet adds its per-shard ".runNNN" suffix:
    // otherwise shard 0 of every cell would write the same path, racily
    // under --jobs. Cell indexes are fixed by the sweep order, so the
    // exported file set is identical at any job count.
    F.Base.Obs = resolveObsConfig(F.Base.Obs);
    if (F.Base.Obs.exportsAnything())
      F.Base.Obs = uniquifySuiteObsPaths(F.Base.Obs, I);
    Cells[I].Result = runFleet(F);
  });

  TableWriter T({"config", "tenants", "requests", "makespan ms", "accepts",
                 "acc/tenant", "l1/1Kacc", "vs nohpm", "pmu rot",
                 "granted %"});
  for (size_t I = 0; I != Cells.size(); ++I) {
    const Cell &C = Cells[I];
    const FleetResult &R = C.Result;
    uint64_t Reqs = 0, Accepts = 0;
    double GrantedSum = 0.0;
    for (const FleetTenantResult &TR : R.Tenants) {
      Reqs += TR.Requests;
      Accepts += countAccepts(TR.Run.Journal);
      GrantedSum += TR.Share.Executed
                        ? static_cast<double>(TR.Share.Granted) /
                              static_cast<double>(TR.Share.Executed)
                        : 1.0;
    }
    double L1 = l1PerKAccess(R.Aggregate);
    // The nohpm cell for the same shard count precedes the policy cell.
    std::string Delta = "-";
    if (C.Policy) {
      double Base = l1PerKAccess(Cells[I - 1].Result.Aggregate);
      if (Base > 0.0)
        Delta = pct(L1 / Base);
    }
    T.addRow({C.Label, formatString("%zu", R.Tenants.size()),
              withThousandsSep(Reqs),
              formatString("%.2f",
                           VirtualClock::toSeconds(R.MakespanCycles) * 1e3),
              withThousandsSep(Accepts),
              formatString("%.1f", R.Tenants.empty()
                                       ? 0.0
                                       : static_cast<double>(Accepts) /
                                             static_cast<double>(
                                                 R.Tenants.size())),
              formatString("%.2f", L1), Delta,
              withThousandsSep(R.PmuRotations),
              formatString("%.1f", 100.0 * GrantedSum /
                                       static_cast<double>(
                                           R.Tenants.empty()
                                               ? 1
                                               : R.Tenants.size()))});
  }
  emit(T, "fleet_scaling");

  // JSON: per-tenant rows then the fleet-wide aggregate, per cell, in cell
  // order -- stable at any --jobs.
  std::vector<LabeledResult> Runs;
  for (const Cell &C : Cells) {
    for (const FleetTenantResult &TR : C.Result.Tenants)
      Runs.push_back({formatString("%s/tenant%03u", C.Label.c_str(),
                                   TR.Tenant),
                      TR.Run});
    Runs.push_back({C.Label + "/fleet", C.Result.Aggregate});
  }
  maybeWriteJson(Opts, "fleet_scaling", Runs);
  return 0;
}
