//===-- bench/fig4_l1_miss_reduction.cpp - Paper Figure 4 -----------------===//
//
// Figure 4: "L1 miss reduction with co-allocated objects (heap size = 4x
// minimum heap size)." Co-allocating GC vs the plain baseline.
//
// Shape to reproduce: db the biggest winner (paper: -28%); jess,
// pseudojbb, bloat, pmd visible; compress/mpegaudio noise-only (no
// candidates); the rest small.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(50);
  banner("Figure 4: L1 miss reduction from HPM-guided co-allocation",
         "Figure 4 (L1 misses, coalloc vs baseline, heap = 4x min)", Scale,
         "db largest (paper -28%); pseudojbb small despite many pairs "
         "(>line-sized long[]); compress/mpegaudio ~0");

  SuiteSpec S;
  S.Workloads = selectedWorkloads(Opts.Filter);
  S.Params.ScalePercent = Scale;
  S.Params.Seed = envSeed();
  S.Repeat = Opts.Repeat;
  S.Variants = {
      {"base", nullptr},
      {"coalloc",
       [](RunConfig &C) {
         C.Monitoring = true;
         C.Coallocation = true;
         C.Monitor.SamplingInterval = 5000; // Paper 50K, time-scaled /10.
       }},
  };
  SuiteResults R = runSuite(S, suiteOptions(Opts));

  TableWriter T({"program", "L1 baseline", "L1 coalloc", "reduction",
                 "pairs"});
  for (size_t W = 0; W != S.Workloads.size(); ++W) {
    const RunResult &B = R.at(W, 0, 0, 0);
    const RunResult &O = R.at(W, 0, 0, 1);
    double Ratio = static_cast<double>(O.Memory.L1Misses) /
                   static_cast<double>(B.Memory.L1Misses);
    T.addRow({S.Workloads[W], withThousandsSep(B.Memory.L1Misses),
              withThousandsSep(O.Memory.L1Misses), pct(Ratio),
              withThousandsSep(O.CoallocatedPairs)});
  }
  emit(T, "fig4");
  maybeWriteJson(Opts, "fig4", R);
  return 0;
}
