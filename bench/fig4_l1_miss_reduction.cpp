//===-- bench/fig4_l1_miss_reduction.cpp - Paper Figure 4 -----------------===//
//
// Figure 4: "L1 miss reduction with co-allocated objects (heap size = 4x
// minimum heap size)." Co-allocating GC vs the plain baseline.
//
// Shape to reproduce: db the biggest winner (paper: -28%); jess,
// pseudojbb, bloat, pmd visible; compress/mpegaudio noise-only (no
// candidates); the rest small.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  bench::initObs(Argc, Argv);
  uint32_t Scale = envScale(50);
  banner("Figure 4: L1 miss reduction from HPM-guided co-allocation",
         "Figure 4 (L1 misses, coalloc vs baseline, heap = 4x min)", Scale,
         "db largest (paper -28%); pseudojbb small despite many pairs "
         "(>line-sized long[]); compress/mpegaudio ~0");

  TableWriter T({"program", "L1 baseline", "L1 coalloc", "reduction",
                 "pairs"});
  for (const std::string &Name : selectedWorkloads()) {
    RunConfig Base;
    Base.Workload = Name;
    Base.Params.ScalePercent = Scale;
    Base.Params.Seed = envSeed();
    Base.HeapFactor = 4.0;
    RunResult B = runExperiment(Base);

    RunConfig Opt = Base;
    Opt.Monitoring = true;
    Opt.Coallocation = true;
    Opt.Monitor.SamplingInterval = 5000; // Paper 50K, time-scaled /10.
    RunResult O = runExperiment(Opt);

    double Ratio = static_cast<double>(O.Memory.L1Misses) /
                   static_cast<double>(B.Memory.L1Misses);
    T.addRow({Name, withThousandsSep(B.Memory.L1Misses),
              withThousandsSep(O.Memory.L1Misses), pct(Ratio),
              withThousandsSep(O.CoallocatedPairs)});
  }
  emit(T, "fig4");
  return 0;
}
