//===-- bench/micro_components.cpp - Substrate microbenchmarks ------------===//
//
// google-benchmark microbenchmarks of the simulator substrate itself:
// the cache model, TLB, the PEBS event path, the free-list allocator, the
// sample resolver, and the two execution engines. These measure *host*
// performance of the simulation (how fast experiments run), not simulated
// quantities.
//
//===----------------------------------------------------------------------===//

#include "core/SamplePipeline.h"
#include "core/SampleResolver.h"
#include "gc/GenMSPlan.h"
#include "harness/Fleet.h"
#include "heap/FreeListAllocator.h"
#include "hpm/NativeSampleLibrary.h"
#include "hpm/PebsUnit.h"
#include "hpm/PerfmonModule.h"
#include "memsim/MemoryHierarchy.h"
#include "memsim/ReferenceMemsim.h"
#include "obs/Metrics.h"
#include "support/Flags.h"
#include "support/Random.h"
#include "vm/AdaptiveOptimizationSystem.h"
#include "vm/BytecodeBuilder.h"
#include "vm/VirtualMachine.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

using namespace hpmvm;

namespace {

void BM_CacheAccessHit(benchmark::State &State) {
  Cache C(l1DefaultConfig());
  C.access(0x40000000);
  for (auto _ : State)
    benchmark::DoNotOptimize(C.access(0x40000000));
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessStream(benchmark::State &State) {
  Cache C(l2DefaultConfig());
  Address A = 0x40000000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.access(A));
    A += 128;
  }
}
BENCHMARK(BM_CacheAccessStream);

void BM_TlbAccess(benchmark::State &State) {
  Tlb T(dtlbDefaultConfig());
  SplitMix64 Rng(1);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        T.access(0x40000000 + (Rng.next() & 0xffffff)));
}
BENCHMARK(BM_TlbAccess);

void BM_HierarchyRandomAccess(benchmark::State &State) {
  MemoryHierarchy M;
  SplitMix64 Rng(1);
  for (auto _ : State) {
    Address A = 0x40000000 + (Rng.next() & 0x3fffff);
    benchmark::DoNotOptimize(M.access(A, 4, false, 0x20000000));
  }
}
BENCHMARK(BM_HierarchyRandomAccess);

/// One pre-drawn access of the memsim benchmark trace (R7 file: plain
/// scalar members only).
struct TraceAccess {
  Address Addr;
  Address Pc;
  uint32_t Size;
  bool IsWrite;
};

/// The shared trace for the scalar-vs-fast memsim gate: hot-set reuse,
/// an ascending stream, and uniform noise, pre-drawn so both models replay
/// the identical sequence and the RNG cost stays out of the measurement.
std::vector<TraceAccess> makeMemsimTrace(size_t N) {
  std::vector<TraceAccess> Trace(N);
  SplitMix64 Rng(42);
  Address Stream = 0x40000000;
  for (size_t I = 0; I != N; ++I) {
    uint64_t D = Rng.nextBelow(100);
    Address A;
    if (D < 75) {
      uint64_t Line = Rng.nextBelow(32);
      Line = Line < 24 ? Line % 8 : Line;
      A = 0x50000000 + static_cast<Address>(Line) * 128 +
          static_cast<Address>(Rng.nextBelow(120));
    } else if (D < 90) {
      Stream += 64;
      A = Stream;
    } else {
      A = 0x60000000 + static_cast<Address>(Rng.next() & 0x3fffff);
    }
    Trace[I] = {A, 0x20000000 + static_cast<Address>(I % 4096) * 4,
                (Rng.nextBelow(4) == 0) ? 8u : 4u, Rng.nextBelow(3) == 0};
  }
  return Trace;
}

// The memsim rewrite's headline gate: the retired array-of-structs oracle
// vs the branch-free struct-of-arrays fast path on the identical pre-drawn
// trace. CI asserts Fast >= 2x Scalar items/sec in Release; the randomized
// equivalence test separately pins the two bit-identical.
void BM_MemsimAccessScalar(benchmark::State &State) {
  refmodel::MemoryHierarchy M((MemoryHierarchyConfig()));
  std::vector<TraceAccess> Trace = makeMemsimTrace(4096);
  for (auto _ : State)
    for (const TraceAccess &A : Trace)
      benchmark::DoNotOptimize(M.access(A.Addr, A.Size, A.IsWrite, A.Pc));
  State.SetItemsProcessed(State.iterations() * Trace.size());
}
BENCHMARK(BM_MemsimAccessScalar);

void BM_MemsimAccessFast(benchmark::State &State) {
  MemoryHierarchy M;
  std::vector<TraceAccess> Trace = makeMemsimTrace(4096);
  for (auto _ : State)
    for (const TraceAccess &A : Trace)
      benchmark::DoNotOptimize(
          M.accessFast(A.Addr, A.Size, A.IsWrite, A.Pc));
  State.SetItemsProcessed(State.iterations() * Trace.size());
}
BENCHMARK(BM_MemsimAccessFast);

// Wall-clock cost of one full arbiter-free traffic fleet at 1 vs 4
// intra-run workers (the worker-pool engine; outputs are byte-identical,
// the delta is host time only). Fleet construction happens outside the
// timed region; real time, not CPU time, is the quantity of interest.
// CI's Release gate asserts the 4-worker run beats 1-worker by >1.5x on
// a multi-core runner; single-core hosts will show ~1x (the coordinator
// yields to the workers), which is why the gate lives in CI, not here.
void BM_FleetStep(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    FleetConfig F;
    F.Shards = 16;
    F.Jobs = static_cast<unsigned>(State.range(0));
    F.Base.Workload = "servermix";
    F.Base.Params.ScalePercent = 30;
    F.Base.HeapFactor = 2.0;
    F.TrafficCfg.RequestsPerTenant = 64;
    auto Fl = std::make_unique<Fleet>(F);
    State.ResumeTiming();
    Fl->run();
    benchmark::DoNotOptimize(Fl.get());
    State.PauseTiming();
    Fl.reset();
    State.ResumeTiming();
  }
  State.SetItemsProcessed(State.iterations() * 16 * 64);
}
BENCHMARK(BM_FleetStep)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PebsEventPath(benchmark::State &State) {
  PebsUnit U;
  PebsConfig C;
  C.Interval = 100000;
  U.configure(C);
  U.start();
  std::vector<PebsSample> Drain;
  for (auto _ : State) {
    U.onMemoryEvent(HpmEventKind::L1DMiss, 0x20000000, 0x40000000);
    if (U.interruptPending()) {
      Drain.clear();
      U.drainInto(Drain);
    }
  }
}
BENCHMARK(BM_PebsEventPath);

void BM_FreeListAllocSweep(benchmark::State &State) {
  for (auto _ : State) {
    BlockPool Pool(kHeapBase, 64 * kBlockBytes);
    FreeListAllocator A(Pool);
    for (int I = 0; I != 10000; ++I)
      benchmark::DoNotOptimize(A.alloc(16 + (I % 40) * 8));
    A.sweep([](Address Cell) { return (Cell & 0x40) != 0; });
  }
}
BENCHMARK(BM_FreeListAllocSweep);

/// Shared VM for the engine benchmarks.
struct EngineRig {
  VirtualMachine Vm;
  GenMSPlan Gc;
  MethodId Loop;

  EngineRig()
      : Vm([] {
          VmConfig C;
          C.HeapBytes = 8 * 1024 * 1024;
          return C;
        }()),
        Gc(Vm.objects(), Vm.clock(),
           CollectorConfig{.HeapBytes = 8 * 1024 * 1024}) {
    Vm.setCollector(&Gc);
    BytecodeBuilder B("loop");
    uint32_t N = B.addParam(ValKind::Int);
    uint32_t Acc = B.newLocal(), I = B.newLocal();
    B.returns(RetKind::Int);
    B.iconst(0).istore(Acc).iconst(0).istore(I);
    Label L = B.label(), D = B.label();
    B.bind(L).iload(I).iload(N).ifICmp(CondKind::Ge, D);
    B.iload(Acc).iload(I).ixor().istore(Acc).iinc(I, 1).jump(L);
    B.bind(D).iload(Acc).iret();
    Loop = Vm.addMethod(B.build());
    AosConfig AC;
    AC.Enabled = false;
    Vm.aos().setConfig(AC);
  }
};

void BM_InterpreterThroughput(benchmark::State &State) {
  EngineRig R;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        R.Vm.invoke(R.Loop, {Value::makeInt(1000)}));
  State.SetItemsProcessed(State.iterations() * 6000); // ~6 bytecodes/iter.
}
BENCHMARK(BM_InterpreterThroughput);

void BM_MachineExecutorThroughput(benchmark::State &State) {
  EngineRig R;
  R.Vm.aos().compileNow(R.Vm.method(R.Loop));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        R.Vm.invoke(R.Loop, {Value::makeInt(1000)}));
  State.SetItemsProcessed(State.iterations() * 6000);
}
BENCHMARK(BM_MachineExecutorThroughput);

// The metric sinks became relaxed atomics so parallel experiments may
// share them; relaxed load+store compiles to the same unlocked
// load/add/store as the old plain increment, so these should match the
// pre-atomic numbers (a fetch_add would not: lock prefix).
void BM_MetricCounterInc(benchmark::State &State) {
  Counter C;
  for (auto _ : State) {
    C.inc();
    benchmark::DoNotOptimize(C);
  }
  benchmark::DoNotOptimize(C.value());
}
BENCHMARK(BM_MetricCounterInc);

void BM_MetricGaugeSet(benchmark::State &State) {
  Gauge G;
  uint64_t V = 0;
  for (auto _ : State) {
    G.set(++V);
    benchmark::DoNotOptimize(G);
  }
}
BENCHMARK(BM_MetricGaugeSet);

void BM_MetricHistogramRecord(benchmark::State &State) {
  Histogram H;
  SplitMix64 Rng(1);
  for (auto _ : State) {
    H.record(Rng.next() & 0xffff);
    benchmark::DoNotOptimize(H);
  }
}
BENCHMARK(BM_MetricHistogramRecord);

// Through the shared process-wide sink, exactly what an unwired component
// bumps -- and the one instance concurrent experiments actually share.
void BM_MetricCounterSinkPath(benchmark::State &State) {
  Counter &C = Counter::sink();
  for (auto _ : State) {
    C.inc();
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_MetricCounterSinkPath);

// The pipeline refactor's hot path: per-sample fan-out cost at 1 vs 4
// registered consumers. The consumer bodies are empty, so the delta is
// pure dispatch overhead (kind filter + virtual call + counter bump).
struct NullConsumer : SampleConsumer {
  const char *name() const override { return "null"; }
  void onSample(const AttributedSample &S) override {
    benchmark::DoNotOptimize(&S);
  }
};

void BM_PipelineDispatch(benchmark::State &State) {
  SamplePipeline P;
  std::vector<std::unique_ptr<NullConsumer>> Consumers;
  for (int64_t I = 0; I != State.range(0); ++I) {
    Consumers.push_back(std::make_unique<NullConsumer>());
    P.addConsumer(*Consumers.back());
  }
  AttributedSample S;
  S.Kind = HpmEventKind::L1DMiss;
  S.Field = 3;
  S.Method = 1;
  for (auto _ : State)
    P.dispatch(S);
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_PipelineDispatch)->Arg(1)->Arg(4);

// The batched counterpart: one dispatchBatch per 256-sample batch, same
// empty consumers (via the default consumeBatch, which loops onSample).
// Compare items/sec against BM_PipelineDispatch at equal consumer count:
// the delta is the amortized per-sample dispatch overhead (kind filter,
// virtual call, and counter bumps move from per-sample to per-batch).
void BM_PipelineDispatchBatch(benchmark::State &State) {
  SamplePipeline P;
  std::vector<std::unique_ptr<NullConsumer>> Consumers;
  for (int64_t I = 0; I != State.range(0); ++I) {
    Consumers.push_back(std::make_unique<NullConsumer>());
    P.addConsumer(*Consumers.back());
  }
  std::vector<AttributedSample> Batch(256);
  for (AttributedSample &S : Batch) {
    S.Kind = HpmEventKind::L1DMiss;
    S.Field = 3;
    S.Method = 1;
  }
  for (auto _ : State)
    P.dispatchBatch(Batch);
  State.SetItemsProcessed(State.iterations() * Batch.size() *
                          State.range(0));
}
BENCHMARK(BM_PipelineDispatchBatch)->Arg(1)->Arg(4);

void BM_SampleResolution(benchmark::State &State) {
  EngineRig R;
  R.Vm.aos().compileNow(R.Vm.method(R.Loop));
  SampleResolver Res(R.Vm);
  const MachineFunction &F = R.Vm.compiledCode(0);
  SplitMix64 Rng(1);
  for (auto _ : State) {
    Address Pc = F.addressOf(static_cast<uint32_t>(
        Rng.nextBelow(F.Insts.size())));
    benchmark::DoNotOptimize(Res.resolve(Pc));
  }
}
BENCHMARK(BM_SampleResolution);

/// A PEBS-like PC stream over a compiled function: runs of samples on one
/// instruction, jumping every 16 samples (real PEBS PCs cluster on the
/// hot loads, which is what the resolver's last-range memo exploits).
std::vector<PebsSample> makePcStream(const MachineFunction &F, size_t N) {
  std::vector<PebsSample> Stream(N);
  SplitMix64 Rng(7);
  uint32_t Inst = 0;
  for (size_t I = 0; I != N; ++I) {
    if (I % 16 == 0)
      Inst = static_cast<uint32_t>(Rng.nextBelow(F.Insts.size()));
    Stream[I].Eip = F.addressOf(Inst);
    Stream[I].Regs[0] = 0x20000000;
  }
  return Stream;
}

// Scalar vs batched resolution of the identical 256-sample stream. The
// scalar loop pays the per-call overhead (index-freshness check + stats
// snapshot + four metric flushes) once per sample; resolveBatch pays it
// once per batch and runs the flat range lookup back to back.
void BM_ResolveScalar(benchmark::State &State) {
  EngineRig R;
  R.Vm.aos().compileNow(R.Vm.method(R.Loop));
  SampleResolver Res(R.Vm);
  std::vector<PebsSample> Stream = makePcStream(R.Vm.compiledCode(0), 256);
  for (auto _ : State)
    for (const PebsSample &S : Stream)
      benchmark::DoNotOptimize(Res.resolve(S.Eip));
  State.SetItemsProcessed(State.iterations() * Stream.size());
}
BENCHMARK(BM_ResolveScalar);

void BM_ResolveBatch(benchmark::State &State) {
  EngineRig R;
  R.Vm.aos().compileNow(R.Vm.method(R.Loop));
  SampleResolver Res(R.Vm);
  std::vector<PebsSample> Stream = makePcStream(R.Vm.compiledCode(0), 256);
  ResolvedBatch Out;
  for (auto _ : State) {
    Res.resolveBatch(Stream.data(), Stream.size(), Out);
    benchmark::DoNotOptimize(Out.Samples.data());
  }
  State.SetItemsProcessed(State.iterations() * Stream.size());
}
BENCHMARK(BM_ResolveBatch);

// The zero-copy drain: feed 64 events into the PEBS unit (interval 1, so
// each becomes a sample), then one readIntoArray + batch view. The drain
// is a single kernel-side fill of the pre-allocated buffer; batch() is
// pointer arithmetic.
void BM_DrainBatch(benchmark::State &State) {
  PebsUnit U;
  PerfmonModule M(U);
  NativeSampleLibrary L(M);
  M.startSampling(HpmEventKind::L1DMiss, 1, /*RandomizeLowBits=*/false);
  for (auto _ : State) {
    for (int I = 0; I != 64; ++I)
      U.onMemoryEvent(HpmEventKind::L1DMiss, 0x20000000 + I * 64,
                      0x40000000 + I * 4);
    size_t N = L.readIntoArray();
    SampleBatch B = L.batch();
    benchmark::DoNotOptimize(B.data());
    benchmark::DoNotOptimize(N);
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_DrainBatch);

} // namespace

// Not BENCHMARK_MAIN(): google-benchmark leaves non---benchmark_* args in
// argv and runs anyway (exit 0/1). Every bench binary in this repo names
// the first unknown flag and exits 2, so a typo'd sweep script fails
// loudly instead of silently benchmarking the wrong thing.
int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  hpmvm::flags::ArgScanner S(Argc, Argv);
  while (S.next())
    S.keepUnknown();
  if (!S.ok())
    return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
