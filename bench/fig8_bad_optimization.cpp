//===-- bench/fig8_bad_optimization.cpp - Paper Figure 8 ------------------===//
//
// Figure 8: "Cache misses sampled for String objects, db, with a poorly
// performing locality optimization ... starting out with a good
// allocation order. We then instructed the GC manually to place one cache
// line of empty space (128 bytes) between the String and the char[]
// objects -- effectively undoing the originally well performing setting.
// Monitoring the cache miss rate for individual classes allows the system
// to discover that this transformation does not improve performance, and
// after several measurement periods it triggers a switch back to the
// original configuration."
//
// Two controlled scenarios, each a complete assess-and-revert story and
// each leaving a full decision journal (--journal-out writes
// <path>.run000 / <path>.run001):
//
//   Scenario 1 (the paper's): a steady-state db table with a good
//   allocation order; a forced 128-byte gap is injected mid-run and the
//   controller reverts it from the measured rate.
//
//   Scenario 2 (the paper's caution about prefetching made concrete):
//   the autonomous PrefetchInjector optimizes for the hot field of an
//   early program phase; the workload then shifts to a different table
//   whose accesses the rewrite does nothing for, the assessed rate
//   regresses against the pre-change baseline, and the controller
//   reinstalls the original method bodies.
//
// The paper runs Figure 8 "in a controlled setting": the workloads here
// are db record/char[] patterns in a steady state (many short build+scan
// iterations), so the per-period miss rate is stationary while the
// policy is stable -- the precondition for rate-based assessment. Objects
// already placed stay where they are; only newly promoted pairs follow
// the current policy, so the rate moves one table-rebuild after each
// policy change, as in the paper. Scenario parameters are deliberately
// NOT scaled by HPMVM_SCALE: the trigger/warmup/decision windows are
// tuned against fixed phase lengths.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/OptimizationController.h"
#include "core/PrefetchInjector.h"

#include "vm/AdaptiveOptimizationSystem.h"
#include "gc/GenMSPlan.h"
#include "workloads/PatternKernels.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

/// Collects the per-scenario result (for --json-out) from a hand-built
/// run; scenarios assemble their VMs directly, so there is no Experiment
/// to ask.
RunResult scenarioResult(VirtualMachine &Vm, GenMSPlan &Gc,
                         HpmMonitor &Monitor, ObsContext &Obs) {
  RunResult R;
  R.TotalCycles = Vm.clock().now();
  R.GcCycles = Gc.stats().GcCycles;
  R.Gc = Gc.stats();
  R.Vm = Vm.stats();
  R.Memory = Vm.memory().stats();
  R.MonitorOverheadCycles = Monitor.overheadCycles();
  R.SamplesTaken = Monitor.pebs().samplesTaken();
  R.CoallocatedPairs = Gc.stats().ObjectsCoallocated;
  R.Metrics = Obs.metrics().snapshot();
  R.Journal = Obs.journal().snapshot();
  return R;
}

/// Scenario 1: the paper's forced-gap experiment.
RunResult runForcedGapScenario(uint32_t Scale) {
  ObsContext Obs(uniquifySuiteObsPaths(resolveObsConfig(ObsConfig{}), 0));

  // --- A steady-state db: many short build+scan iterations ----------------
  VmConfig VC;
  VC.HeapBytes = 16 * 1024 * 1024;
  VC.Seed = envSeed();
  VirtualMachine Vm(VC);
  GenMSPlan Gc(Vm.objects(), Vm.clock(),
               CollectorConfig{.HeapBytes = VC.HeapBytes});
  Vm.setCollector(&Gc);

  RecordTableParams P;
  P.Prefix = "db8";
  P.NumRecords = scaled(8000, WorkloadParams{Scale, envSeed()});
  P.MinChars = 8;
  P.MaxChars = 24;
  P.TouchChars = 8;
  P.ScanPasses = 6;
  P.SortPasses = 0;
  P.Iterations = 16;
  P.GarbageEvery = 1;
  P.GarbageChars = 24;
  WorkloadProgram Prog = buildRecordTable(Vm, P);
  Vm.aos().applyCompilationPlan(Prog.CompilationPlan);

  MonitorConfig MC;
  MC.SamplingInterval = 4000;
  HpmMonitor Monitor(Vm, MC);
  Monitor.attach();

  FieldId FValue = Vm.classes().fieldId(0, "value"); // db8Record is class 0.
  FieldMissTable &Table = Monitor.missTable();
  Table.trackField(FValue);

  ControllerConfig CC;
  CC.BaselineWindow = 8;
  CC.DecisionWindow = 8;
  CC.WarmupPeriods = 4; // The change shows one table-rebuild later.
  CC.RegressionFactor = 1.25;
  CC.IgnoreZeroRatePeriods = true;
  OptimizationController Controller(CC);
  Controller.setJournalSubject("placement");

  Vm.attachObs(Obs);
  Gc.attachObs(Obs);
  Monitor.attachObs(Obs);
  Controller.attachObs(Obs, &Vm.clock());

  CoallocationAdvisor &Advisor = Monitor.advisor();
  const uint64_t EstablishedPairs = 3ull * P.NumRecords;
  int ActiveSinceEstablished = 0;
  int Period = 0;
  int InjectedAt = -1, RevertedAt = -1;

  Controller.setRevertAction([&] {
    Advisor.setForcedGapBytes(0); // Switch back to the original policy.
    RevertedAt = Period;
  });

  Monitor.setPeriodObserver([&] {
    ++Period;
    const auto &Line = Table.timeline(FValue);
    if (Line.empty())
      return;
    Controller.observePeriod(static_cast<double>(Line.back().Delta));
    if (InjectedAt < 0 &&
        Gc.stats().ObjectsCoallocated >= EstablishedPairs &&
        Line.back().Delta > 0 && ++ActiveSinceEstablished > 8) {
      // The deliberately bad transformation: one line of padding.
      Advisor.setForcedGapBytes(128);
      Controller.notePolicyChange();
      InjectedAt = Period;
    }
  });

  Vm.run(Prog.Main);
  Monitor.finish();

  TableWriter T({"period", "t (ms)", "sampled misses", "phase"});
  const auto &Line = Table.timeline(FValue);
  for (size_t I = 0; I != Line.size(); ++I) {
    const char *Phase =
        (InjectedAt >= 0 && static_cast<int>(I) >= InjectedAt &&
         (RevertedAt < 0 || static_cast<int>(I) < RevertedAt))
            ? "BAD-PLACEMENT"
        : (RevertedAt >= 0 && static_cast<int>(I) >= RevertedAt)
            ? "reverted"
            : "good";
    T.addRow({withThousandsSep(I),
              formatString("%.1f",
                           VirtualClock::toSeconds(Line[I].At) * 1e3),
              withThousandsSep(Line[I].Delta), Phase});
  }
  emit(T, "fig8");

  printf("Injected the 128-byte gap at period %d; controller state: ",
         InjectedAt);
  switch (Controller.state()) {
  case OptimizationController::State::Reverted:
    printf("REVERTED at period %d (pre-change rate %.2f, under the bad "
           "policy %.2f samples/period)\n",
           RevertedAt, Controller.decisionBaseline(),
           Controller.assessedRate());
    break;
  case OptimizationController::State::Accepted:
    printf("accepted (no regression detected: pre-change %.2f, assessed "
           "%.2f)\n",
           Controller.decisionBaseline(), Controller.assessedRate());
    break;
  default:
    printf("still assessing (run too short for a verdict)\n");
    break;
  }
  printf("Gap bytes inserted by the GC while the bad policy was live: "
         "%llu\n",
         static_cast<unsigned long long>(Gc.stats().CoallocGapBytes));
  printf("Decisions journaled: %zu\n\n", Obs.journal().size());

  if (Obs.config().exportsAnything())
    Obs.exportAll();
  return scenarioResult(Vm, Gc, Monitor, Obs);
}

/// Scenario 2: an autonomous prefetch injection that stops paying off
/// when the program moves to its next phase.
RunResult runBadPrefetchScenario() {
  ObsContext Obs(uniquifySuiteObsPaths(resolveObsConfig(ObsConfig{}), 1));

  VmConfig VC;
  VC.HeapBytes = 24 * 1024 * 1024;
  VC.Seed = envSeed();
  VirtualMachine Vm(VC);
  GenMSPlan Gc(Vm.objects(), Vm.clock(),
               CollectorConfig{.HeapBytes = VC.HeapBytes});
  Vm.setCollector(&Gc);

  // Phase A: a small, lukewarm table. The injector's trigger fires here,
  // so the prefetches it inserts target pfaRecord::value.
  RecordTableParams PA;
  PA.Prefix = "pfa";
  PA.NumRecords = 4000;
  PA.MinChars = 8;
  PA.MaxChars = 16;
  PA.TouchChars = 8;
  PA.ScanPasses = 6;
  PA.SortPasses = 0;
  PA.Iterations = 8;
  PA.GarbageEvery = 2;
  PA.GarbageChars = 16;
  WorkloadProgram ProgA = buildRecordTable(Vm, PA);

  // Phase B: a bigger, hotter table over *different* classes. None of
  // phase A's rewritten loads execute here, so the injected prefetches
  // cannot help -- the assessed rate regresses against the baseline.
  RecordTableParams PB;
  PB.Prefix = "pfb";
  PB.NumRecords = 8000;
  PB.MinChars = 8;
  PB.MaxChars = 24;
  PB.TouchChars = 2;
  PB.ScanPasses = 8;
  PB.SortPasses = 0;
  PB.Iterations = 16;
  PB.GarbageEvery = 1;
  PB.GarbageChars = 24;
  WorkloadProgram ProgB = buildRecordTable(Vm, PB);

  Vm.aos().applyCompilationPlan(ProgA.CompilationPlan);
  Vm.aos().applyCompilationPlan(ProgB.CompilationPlan);

  MonitorConfig MC;
  MC.SamplingInterval = 1000;
  HpmMonitor Monitor(Vm, MC);
  Monitor.attach();
  // Placement stays fixed: prefetching is the only policy under test.
  Monitor.advisor().setEnabled(false);

  PrefetchInjectorConfig PC;
  PC.TriggerSamples = 48;
  PC.MinMisses = 4;
  PrefetchInjector Injector(Vm, PC);

  ControllerConfig CC;
  CC.BaselineWindow = 8;
  CC.DecisionWindow = 8;
  // Long warmup: the verdict must come from the next program phase, not
  // from the tail of the phase the injection optimized for.
  CC.WarmupPeriods = 10;
  CC.RegressionFactor = 1.25;
  CC.IgnoreZeroRatePeriods = true;
  OptimizationController Controller(CC);
  Controller.setJournalSubject("prefetch");
  Injector.setController(&Controller);
  Monitor.addConsumer(Injector);

  Vm.attachObs(Obs);
  Gc.attachObs(Obs);
  Monitor.attachObs(Obs);
  Controller.attachObs(Obs, &Vm.clock());

  Vm.run(ProgA.Main);
  Cycles PhaseSplit = Vm.clock().now();
  Vm.run(ProgB.Main);
  Monitor.finish();

  printf("Scenario 2: prefetch injection across a phase change\n");
  printf("Phase A ended at %.1f ms; run ended at %.1f ms\n",
         VirtualClock::toSeconds(PhaseSplit) * 1e3,
         VirtualClock::toSeconds(Vm.clock().now()) * 1e3);
  printf("Injected: %s (%u methods rewritten, %u prefetches); controller "
         "state: ",
         Injector.injected() ? "yes" : "no",
         Injector.stats().MethodsRewritten,
         Injector.stats().PrefetchesInserted);
  switch (Controller.state()) {
  case OptimizationController::State::Reverted:
    printf("REVERTED (pre-change rate %.2f, assessed under the stale "
           "rewrite %.2f samples/period)\n",
           Controller.decisionBaseline(), Controller.assessedRate());
    break;
  case OptimizationController::State::Accepted:
    printf("accepted (no regression detected: pre-change %.2f, assessed "
           "%.2f)\n",
           Controller.decisionBaseline(), Controller.assessedRate());
    break;
  default:
    printf("still assessing (run too short for a verdict)\n");
    break;
  }
  printf("Original bodies reinstalled: %s\n",
         Injector.reverted() ? "yes" : "no");
  printf("Decisions journaled: %zu\n\n", Obs.journal().size());

  if (Obs.config().exportsAnything())
    Obs.exportAll();
  return scenarioResult(Vm, Gc, Monitor, Obs);
}

} // namespace

int main(int Argc, char **Argv) {
  // Uniform bench flags; this figure is two custom closed-loop runs, so
  // --jobs/--filter/--repeat have nothing to parallelize or select.
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(100);
  banner("Figure 8: detecting and reverting a bad optimization",
         "Figure 8 (forced 128-byte gap + a stale prefetch rewrite, both "
         "assessed by event rates)",
         Scale,
         "rate roughly doubles one rebuild after the bad policy is "
         "injected; the controller reverts after several measurement "
         "periods; the rate returns one rebuild later");

  std::vector<LabeledResult> Runs;
  Runs.push_back({"forced-gap", runForcedGapScenario(Scale)});
  Runs.push_back({"bad-prefetch", runBadPrefetchScenario()});
  maybeWriteJson(Opts, "fig8", Runs);
  return 0;
}
