//===-- bench/fig8_bad_optimization.cpp - Paper Figure 8 ------------------===//
//
// Figure 8: "Cache misses sampled for String objects, db, with a poorly
// performing locality optimization ... starting out with a good
// allocation order. We then instructed the GC manually to place one cache
// line of empty space (128 bytes) between the String and the char[]
// objects -- effectively undoing the originally well performing setting.
// Monitoring the cache miss rate for individual classes allows the system
// to discover that this transformation does not improve performance, and
// after several measurement periods it triggers a switch back to the
// original configuration."
//
// The paper runs this "in a controlled setting": the workload here is the
// db record/char[] pattern in a steady state (many short build+scan
// iterations), so the per-period miss rate for Record::value is stationary
// while the placement policy is stable -- the precondition for rate-based
// assessment. Objects already placed stay where they are; only newly
// promoted pairs follow the current policy, so the rate moves one
// table-rebuild after each policy change, as in the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/OptimizationController.h"

#include "vm/AdaptiveOptimizationSystem.h"
#include "gc/GenMSPlan.h"
#include "workloads/PatternKernels.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  // Uniform bench flags; this figure is one custom closed-loop run, so
  // --jobs/--filter/--repeat have nothing to parallelize or select.
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(100);
  banner("Figure 8: detecting and reverting a bad placement policy",
         "Figure 8 (forced 128-byte gap, assessed by event rates)", Scale,
         "rate roughly doubles one rebuild after the bad policy is "
         "injected; the controller reverts after several measurement "
         "periods; the rate returns one rebuild later");

  // --- A steady-state db: many short build+scan iterations ------------------
  VmConfig VC;
  VC.HeapBytes = 16 * 1024 * 1024;
  VC.Seed = envSeed();
  VirtualMachine Vm(VC);
  GenMSPlan Gc(Vm.objects(), Vm.clock(),
               CollectorConfig{.HeapBytes = VC.HeapBytes});
  Vm.setCollector(&Gc);

  RecordTableParams P;
  P.Prefix = "db8";
  P.NumRecords = scaled(8000, WorkloadParams{Scale, envSeed()});
  P.MinChars = 8;
  P.MaxChars = 24;
  P.TouchChars = 8;
  P.ScanPasses = 6;
  P.SortPasses = 0;
  P.Iterations = 16;
  P.GarbageEvery = 1;
  P.GarbageChars = 24;
  WorkloadProgram Prog = buildRecordTable(Vm, P);
  Vm.aos().applyCompilationPlan(Prog.CompilationPlan);

  MonitorConfig MC;
  MC.SamplingInterval = 4000;
  HpmMonitor Monitor(Vm, MC);
  Monitor.attach();

  FieldId FValue = Vm.classes().fieldId(0, "value"); // db8Record is class 0.
  FieldMissTable &Table = Monitor.missTable();
  Table.trackField(FValue);

  ControllerConfig CC;
  CC.BaselineWindow = 8;
  CC.DecisionWindow = 8;
  CC.WarmupPeriods = 4; // The change shows one table-rebuild later.
  CC.RegressionFactor = 1.25;
  CC.IgnoreZeroRatePeriods = true;
  OptimizationController Controller(CC);

  CoallocationAdvisor &Advisor = Monitor.advisor();
  const uint64_t EstablishedPairs = 3ull * P.NumRecords;
  int ActiveSinceEstablished = 0;
  int Period = 0;
  int InjectedAt = -1, RevertedAt = -1;

  Controller.setRevertAction([&] {
    Advisor.setForcedGapBytes(0); // Switch back to the original policy.
    RevertedAt = Period;
  });

  Monitor.setPeriodObserver([&] {
    ++Period;
    const auto &Line = Table.timeline(FValue);
    if (Line.empty())
      return;
    Controller.observePeriod(static_cast<double>(Line.back().Delta));
    if (InjectedAt < 0 &&
        Gc.stats().ObjectsCoallocated >= EstablishedPairs &&
        Line.back().Delta > 0 && ++ActiveSinceEstablished > 8) {
      // The deliberately bad transformation: one line of padding.
      Advisor.setForcedGapBytes(128);
      Controller.notePolicyChange();
      InjectedAt = Period;
    }
  });

  Vm.run(Prog.Main);
  Monitor.finish();

  TableWriter T({"period", "t (ms)", "sampled misses", "phase"});
  const auto &Line = Table.timeline(FValue);
  for (size_t I = 0; I != Line.size(); ++I) {
    const char *Phase =
        (InjectedAt >= 0 && static_cast<int>(I) >= InjectedAt &&
         (RevertedAt < 0 || static_cast<int>(I) < RevertedAt))
            ? "BAD-PLACEMENT"
        : (RevertedAt >= 0 && static_cast<int>(I) >= RevertedAt)
            ? "reverted"
            : "good";
    T.addRow({withThousandsSep(I),
              formatString("%.1f",
                           VirtualClock::toSeconds(Line[I].At) * 1e3),
              withThousandsSep(Line[I].Delta), Phase});
  }
  emit(T, "fig8");

  printf("Injected the 128-byte gap at period %d; controller state: ",
         InjectedAt);
  switch (Controller.state()) {
  case OptimizationController::State::Reverted:
    printf("REVERTED at period %d (pre-change rate %.2f, under the bad "
           "policy %.2f samples/period)\n",
           RevertedAt, Controller.decisionBaseline(),
           Controller.assessedRate());
    break;
  case OptimizationController::State::Accepted:
    printf("accepted (no regression detected: pre-change %.2f, assessed "
           "%.2f)\n",
           Controller.decisionBaseline(), Controller.assessedRate());
    break;
  default:
    printf("still assessing (run too short for a verdict)\n");
    break;
  }
  printf("Gap bytes inserted by the GC while the bad policy was live: "
         "%llu\n",
         static_cast<unsigned long long>(Gc.stats().CoallocGapBytes));
  maybeWriteJson(Opts, "fig8", std::vector<LabeledResult>{});
  return 0;
}
