//===-- bench/fleet_step.cpp - Arbiter-free fleet step trajectory ---------===//
//
// Fleet step throughput harness: N servermix tenants under open-loop
// request traffic with NO shared PMU (the arbiter-free configuration the
// intra-run worker pool accelerates). All reported quantities are
// simulated -- per-tenant requests, busy cycles, makespan -- so the
// --json-out document and per-shard journals are byte-identical at every
// --fleet-jobs value; CI runs --fleet-jobs 1 vs 4 and cmps, then diffs
// the pinned bench/baselines/BENCH_fleet_step.json. Host-time speedup of
// the worker pool is gated separately by BM_FleetStep in micro_components
// (it needs a multi-core runner; this binary gates only correctness).
//
// Flags beyond the uniform set:
//   --shards <n>       tenant count (default 16)
//   --fleet-jobs <n>   intra-fleet worker threads (default 1; 0 = one per
//                      hardware thread)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/Fleet.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  // Bench-specific axes; strip before the uniform flags.
  uint64_t Shards = 16;
  uint64_t FleetJobs = 1;
  {
    flags::ArgScanner S(Argc, Argv);
    while (S.next()) {
      if (S.takeUint("--shards", 256, Shards)) {
        if (S.ok() && Shards == 0) {
          fprintf(stderr, "error: --shards wants at least 1\n");
          S.fail();
        }
      } else if (S.takeUint("--fleet-jobs", 1024, FleetJobs)) {
        // 0 = hardware concurrency, matching --jobs.
      } else {
        S.keep();
      }
    }
    if (!S.ok())
      return 2;
  }
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(40);
  banner("Fleet step: arbiter-free tenants on the intra-run worker pool",
         "fleet extension (PEBS-at-scale outlook); jobs-invariance harness "
         "for the parallel traffic engine",
         Scale,
         "all counters are simulated: output is byte-identical at every "
         "--fleet-jobs; CI diffs bench/baselines/BENCH_fleet_step.json");

  FleetConfig F;
  F.Shards = static_cast<uint32_t>(Shards);
  F.Jobs = static_cast<unsigned>(FleetJobs);
  F.Base.Workload = "servermix";
  F.Base.Params.ScalePercent = Scale;
  F.Base.Params.Seed = envSeed();
  F.Base.HeapFactor = 2.0;
  // No Monitoring / PolicyEngine: the fleet stays arbiter-free, which is
  // the precondition for the parallel traffic engine.
  F.TrafficCfg.RequestsPerTenant = 512;
  F.TrafficCfg.ArrivalRatePerSec = 200000.0;
  F.Base.Obs = resolveObsConfig(F.Base.Obs);

  FleetResult R = runFleet(F);

  TableWriter T({"tenant", "requests", "busy ms", "total ms", "l1/1Kacc"});
  for (const FleetTenantResult &TR : R.Tenants) {
    double L1PerK =
        TR.Run.Memory.Accesses
            ? 1e3 * static_cast<double>(TR.Run.Memory.L1Misses) /
                  static_cast<double>(TR.Run.Memory.Accesses)
            : 0.0;
    T.addRow({formatString("t%03u", TR.Tenant),
              withThousandsSep(TR.Requests),
              formatString("%.2f",
                           VirtualClock::toSeconds(TR.BusyCycles) * 1e3),
              formatString("%.2f",
                           VirtualClock::toSeconds(TR.Run.TotalCycles) * 1e3),
              formatString("%.2f", L1PerK)});
  }
  T.addRow({"fleet", "-", "-",
            formatString("%.2f",
                         VirtualClock::toSeconds(R.MakespanCycles) * 1e3),
            "-"});
  emit(T, "fleet_step");

  std::vector<LabeledResult> Runs;
  for (const FleetTenantResult &TR : R.Tenants)
    Runs.push_back({formatString("tenant%03u", TR.Tenant), TR.Run});
  Runs.push_back({"fleet", R.Aggregate});
  maybeWriteJson(Opts, "fleet_step", Runs);
  return 0;
}
