//===-- bench/table1_benchmarks.cpp - Paper Table 1 -----------------------===//
//
// Table 1: the benchmark programs. Prints the suite roster together with
// measured per-program basics (allocation volume, executed instructions)
// from a quick run, so the table documents what the synthetic analogues
// actually do.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(40);
  banner("Table 1: benchmark programs",
         "Table 1 (SPECjvm98 s=100 x3, DaCapo 10-2006 MR-2, pseudojbb)",
         Scale,
         "16 programs across three suites, as in the paper (chart, eclipse "
         "and xalan excluded for Jikes 2.4.2 compatibility)");

  SuiteSpec S;
  S.Workloads = selectedWorkloads(Opts.Filter);
  S.Params.ScalePercent = Scale;
  S.Params.Seed = envSeed();
  S.Repeat = Opts.Repeat;
  SuiteResults R = runSuite(S, suiteOptions(Opts));

  TableWriter T({"program", "suite", "min heap", "alloc MB", "objects",
                 "insns (M)", "description"});
  for (size_t W = 0; W != S.Workloads.size(); ++W) {
    const WorkloadSpec *Spec = findWorkload(S.Workloads[W]);
    const RunResult &Run = R.at(W);
    double Insns = R.mean(W, 0, 0, 0, [](const RunResult &Res) {
      return static_cast<double>(Res.Vm.BytecodesInterpreted +
                                 Res.Vm.MachineInstsExecuted);
    });
    T.addRow({S.Workloads[W], Spec->Suite,
              formatString("%.1f MB", scaledMinHeap(*Spec, S.Params) / 1e6),
              formatString("%.1f", Run.Vm.BytesAllocated / 1e6),
              withThousandsSep(Run.Vm.ObjectsAllocated),
              formatString("%.1f", Insns / 1e6), Spec->Description});
  }
  emit(T, "table1");
  maybeWriteJson(Opts, "table1", R);
  return 0;
}
