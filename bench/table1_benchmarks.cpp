//===-- bench/table1_benchmarks.cpp - Paper Table 1 -----------------------===//
//
// Table 1: the benchmark programs. Prints the suite roster together with
// measured per-program basics (allocation volume, executed instructions)
// from a quick run, so the table documents what the synthetic analogues
// actually do.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

int main(int Argc, char **Argv) {
  bench::initObs(Argc, Argv);
  uint32_t Scale = envScale(40);
  banner("Table 1: benchmark programs",
         "Table 1 (SPECjvm98 s=100 x3, DaCapo 10-2006 MR-2, pseudojbb)",
         Scale,
         "16 programs across three suites, as in the paper (chart, eclipse "
         "and xalan excluded for Jikes 2.4.2 compatibility)");

  TableWriter T({"program", "suite", "min heap", "alloc MB", "objects",
                 "insns (M)", "description"});
  for (const std::string &Name : selectedWorkloads()) {
    const WorkloadSpec *W = findWorkload(Name);
    RunConfig C;
    C.Workload = Name;
    C.Params.ScalePercent = Scale;
    C.Params.Seed = envSeed();
    C.HeapFactor = 4.0;
    RunResult R = runExperiment(C);
    uint64_t Insns =
        R.Vm.BytecodesInterpreted + R.Vm.MachineInstsExecuted;
    T.addRow({Name, W->Suite,
              formatString("%.1f MB", scaledMinHeap(*W, C.Params) / 1e6),
              formatString("%.1f", R.Vm.BytesAllocated / 1e6),
              withThousandsSep(R.Vm.ObjectsAllocated),
              formatString("%.1f", Insns / 1e6), W->Description});
  }
  emit(T, "table1");
  return 0;
}
