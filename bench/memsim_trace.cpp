//===-- bench/memsim_trace.cpp - Memsim behavior trajectory ---------------===//
//
// Deterministic memory-hierarchy trajectory: replays a pinned synthetic
// access trace (stream + hot-set reuse + uniform noise, SplitMix64-driven)
// through MemoryHierarchy across a sweep of cache/TLB geometries and
// reports the *simulated* counters -- accesses, miss ladder, prefetch
// fills, and total penalty cycles. Everything here is virtual-machine
// state, not host time, so the --json-out document is byte-reproducible
// and bench/baselines/BENCH_memsim.json pins it: any behavioral drift in
// the memsim fast path (tag encoding, LRU order, stream prefetcher, line
// walk) shows up as a cmp failure in CI, with hpmvm_report rendering the
// per-counter diff. Host-time performance is gated separately by
// BM_MemsimAccess* in micro_components.
//
// NOTE: this file includes memsim/ headers, so the hot-path string lint
// (R7) applies -- no std::string members or parameters in this file.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "memsim/MemoryHierarchy.h"
#include "support/Random.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

/// One geometry cell of the sweep. Pointers, not std::string: R7.
struct Cell {
  const char *Label;
  MemoryHierarchyConfig Config;
};

MemoryHierarchyConfig geometry(uint32_t L1Size, uint32_t L1Line,
                               uint32_t L1Ways, uint32_t L2Size,
                               uint32_t L2Line, uint32_t L2Ways,
                               uint32_t TlbEntries) {
  MemoryHierarchyConfig C;
  C.L1 = {L1Size, L1Line, L1Ways};
  C.L2 = {L2Size, L2Line, L2Ways};
  C.Dtlb = {TlbEntries, 4096};
  return C;
}

/// The pinned trace: a 75/15/10 mix of hot-set reuse, ascending stream,
/// and uniform noise over a 4 MiB window, sizes 4 or 8 bytes (8-byte
/// accesses at line-1 offsets exercise the two-line walk). The draw
/// sequence is fixed, so the resulting counter trajectory is a pure
/// function of (seed, geometry).
RunResult replayTrace(const MemoryHierarchyConfig &Config, uint64_t Seed,
                      uint32_t Accesses) {
  MemoryHierarchy M(Config);
  SplitMix64 Rng(Seed);
  Address Stream = 0x40000000;
  Cycles Penalty = 0;
  for (uint32_t I = 0; I != Accesses; ++I) {
    uint64_t D = Rng.nextBelow(100);
    Address A;
    if (D < 75) {
      // 32 hot lines, skewed toward the first few.
      uint64_t Line = Rng.nextBelow(32);
      Line = Line < 24 ? Line % 8 : Line;
      A = 0x50000000 + static_cast<Address>(Line) * 128 +
          static_cast<Address>(Rng.nextBelow(120));
    } else if (D < 90) {
      Stream += 64;
      A = Stream;
    } else {
      A = 0x60000000 + static_cast<Address>(Rng.next() & 0x3fffff);
    }
    uint32_t Size = (Rng.nextBelow(4) == 0) ? 8 : 4;
    bool IsWrite = Rng.nextBelow(3) == 0;
    Penalty +=
        M.access(A, Size, IsWrite, 0x20000000 + (I % 4096) * 4).Penalty;
  }
  RunResult R;
  R.Memory = M.stats();
  R.TotalCycles = Penalty;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(100);
  // 400k accesses at 100% scale; the trajectory is pinned per scale.
  uint32_t Accesses = 4000 * Scale;
  banner("Memsim trajectory: pinned trace through the cache/TLB sweep",
         "substrate fidelity check (no single paper figure; guards the "
         "branch-free memsim rewrite)",
         Scale,
         "counters are simulated and byte-reproducible; CI diffs them "
         "against bench/baselines/BENCH_memsim.json");

  const Cell Cells[] = {
      {"default", geometry(16384, 128, 8, 1048576, 128, 8, 64)},
      {"small-l1", geometry(4096, 64, 2, 262144, 64, 8, 64)},
      {"direct-mapped", geometry(8192, 64, 1, 262144, 64, 1, 64)},
      {"wide-assoc", geometry(16384, 64, 16, 524288, 64, 16, 64)},
      {"tiny-tlb", geometry(16384, 128, 8, 1048576, 128, 8, 8)},
  };

  TableWriter T({"geometry", "accesses", "l1 miss", "l2 miss", "tlb miss",
                 "hw prefetch", "penalty cycles"});
  std::vector<LabeledResult> Runs;
  for (const Cell &C : Cells) {
    RunResult R = replayTrace(C.Config, envSeed(), Accesses);
    T.addRow({C.Label, withThousandsSep(R.Memory.Accesses),
              withThousandsSep(R.Memory.L1Misses),
              withThousandsSep(R.Memory.L2Misses),
              withThousandsSep(R.Memory.TlbMisses),
              withThousandsSep(R.Memory.PrefetchFills),
              withThousandsSep(R.TotalCycles)});
    Runs.push_back({C.Label, R});
  }
  emit(T, "memsim_trace");
  maybeWriteJson(Opts, "memsim_trace", Runs);
  return 0;
}
