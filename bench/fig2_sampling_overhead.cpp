//===-- bench/fig2_sampling_overhead.cpp - Paper Figure 2 -----------------===//
//
// Figure 2: "Execution time overhead compared to the baseline
// configuration with different sampling intervals (heap size = 4x minimum
// heap size)." Monitoring on (no co-allocation), L1-miss event, sampling
// intervals 25K / 50K / 100K plus the autonomous mode.
//
// Shape to reproduce: overhead shrinks with the interval (proportional to
// the sample rate) for miss-heavy programs; a constant polling floor
// dominates for low-miss programs (mpegaudio); average at 100K/auto under
// ~1%, worst cases a few percent at 25K.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

RunResult runConfigured(const std::string &Name, uint32_t Scale,
                        int Mode) {
  RunConfig C;
  C.Workload = Name;
  C.Params.ScalePercent = Scale;
  C.Params.Seed = envSeed();
  C.HeapFactor = 4.0;
  if (Mode >= 0) {
    C.Monitoring = true;
    C.Coallocation = false;
    if (Mode == 3) {
      C.Monitor.AutoInterval = true;
      // Scaled from the paper's 200/s to the scaled-down runs
      // (DESIGN.md section 6).
      C.Monitor.TargetSamplesPerSec = 2000;
      C.Monitor.SamplingInterval = 10000;
    } else {
      // The paper's 25K/50K/100K, time-scaled /10 like every other
      // per-time quantity (DESIGN.md section 6).
      C.Monitor.SamplingInterval = Mode == 0 ? 2500
                                  : Mode == 1 ? 5000
                                              : 10000;
    }
  }
  return runExperiment(C);
}

} // namespace

int main(int Argc, char **Argv) {
  bench::initObs(Argc, Argv);
  uint32_t Scale = envScale(50);
  banner("Figure 2: execution-time overhead of runtime event sampling",
         "Figure 2 (overhead vs baseline at intervals 25K/50K/100K/auto)",
         Scale,
         "overhead ~proportional to sampling rate; <1% average at "
         "100K/auto; worst cases ~3% at 25K; constant floor for "
         "low-miss programs");

  TableWriter T({"program", "25K/10", "50K/10", "100K/10", "auto",
                 "samples@25K/10"});
  std::vector<double> Avg(4, 0.0);
  int N = 0;

  for (const std::string &Name : selectedWorkloads()) {
    RunResult Base = runConfigured(Name, Scale, -1);
    double Over[4];
    uint64_t Samples25 = 0;
    for (int Mode = 0; Mode != 4; ++Mode) {
      RunResult R = runConfigured(Name, Scale, Mode);
      Over[Mode] = static_cast<double>(R.TotalCycles) /
                       static_cast<double>(Base.TotalCycles) -
                   1.0;
      if (Mode == 0)
        Samples25 = R.SamplesTaken;
      Avg[Mode] += Over[Mode];
    }
    ++N;
    T.addRow({Name, asPercent(Over[0]), asPercent(Over[1]),
              asPercent(Over[2]), asPercent(Over[3]),
              withThousandsSep(Samples25)});
  }

  if (N)
    T.addRow({"AVERAGE", asPercent(Avg[0] / N), asPercent(Avg[1] / N),
              asPercent(Avg[2] / N), asPercent(Avg[3] / N), "-"});
  emit(T, "fig2");
  return 0;
}
