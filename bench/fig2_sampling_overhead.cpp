//===-- bench/fig2_sampling_overhead.cpp - Paper Figure 2 -----------------===//
//
// Figure 2: "Execution time overhead compared to the baseline
// configuration with different sampling intervals (heap size = 4x minimum
// heap size)." Monitoring on (no co-allocation), L1-miss event, sampling
// intervals 25K / 50K / 100K plus the autonomous mode.
//
// Shape to reproduce: overhead shrinks with the interval (proportional to
// the sample rate) for miss-heavy programs; a constant polling floor
// dominates for low-miss programs (mpegaudio); average at 100K/auto under
// ~1%, worst cases a few percent at 25K.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

// The paper's 25K/50K/100K intervals, time-scaled /10 like every other
// per-time quantity (DESIGN.md section 6).
SuiteVariant monitored(const char *Name, uint64_t Interval) {
  return {Name, [Interval](RunConfig &C) {
            C.Monitoring = true;
            C.Coallocation = false;
            C.Monitor.SamplingInterval = Interval;
          }};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(50);
  banner("Figure 2: execution-time overhead of runtime event sampling",
         "Figure 2 (overhead vs baseline at intervals 25K/50K/100K/auto)",
         Scale,
         "overhead ~proportional to sampling rate; <1% average at "
         "100K/auto; worst cases ~3% at 25K; constant floor for "
         "low-miss programs");

  SuiteSpec S;
  S.Workloads = selectedWorkloads(Opts.Filter);
  S.Params.ScalePercent = Scale;
  S.Params.Seed = envSeed();
  S.Repeat = Opts.Repeat;
  S.Variants = {
      {"base", nullptr},
      monitored("25K", 2500),
      monitored("50K", 5000),
      monitored("100K", 10000),
      {"auto",
       [](RunConfig &C) {
         C.Monitoring = true;
         C.Coallocation = false;
         C.Monitor.AutoInterval = true;
         // Scaled from the paper's 200/s to the scaled-down runs
         // (DESIGN.md section 6).
         C.Monitor.TargetSamplesPerSec = 2000;
         C.Monitor.SamplingInterval = 10000;
       }},
  };
  SuiteResults R = runSuite(S, suiteOptions(Opts));

  auto Cycles = [](const RunResult &Res) {
    return static_cast<double>(Res.TotalCycles);
  };

  TableWriter T({"program", "25K/10", "50K/10", "100K/10", "auto",
                 "samples@25K/10"});
  std::vector<double> Avg(4, 0.0);
  int N = 0;
  for (size_t W = 0; W != S.Workloads.size(); ++W) {
    double Base = R.mean(W, 0, 0, 0, Cycles);
    double Over[4];
    for (size_t V = 0; V != 4; ++V) {
      Over[V] = R.mean(W, 0, 0, V + 1, Cycles) / Base - 1.0;
      Avg[V] += Over[V];
    }
    ++N;
    T.addRow({S.Workloads[W], asPercent(Over[0]), asPercent(Over[1]),
              asPercent(Over[2]), asPercent(Over[3]),
              withThousandsSep(R.at(W, 0, 0, 1).SamplesTaken)});
  }

  if (N)
    T.addRow({"AVERAGE", asPercent(Avg[0] / N), asPercent(Avg[1] / N),
              asPercent(Avg[2] / N), asPercent(Avg[3] / N), "-"});
  emit(T, "fig2");
  maybeWriteJson(Opts, "fig2", R);
  return 0;
}
