//===-- bench/fig7_feedback_timeline.cpp - Paper Figure 7 -----------------===//
//
// Figure 7: "Effect of co-allocation: Cache misses sampled for String
// objects, db".
//   (a) cumulative sampled L1 misses when dereferencing Record::value
//       (the String::value analogue), dyn-coalloc vs no-coalloc: a sharp
//       bend where co-allocation kicks in;
//   (b) per-period miss rate over time with the 3-period moving average:
//       the rate drops when co-allocation starts. The curves are
//       stepwise-constant because samples are batch-processed.
//
// Not a SuiteSpec grid (each run tracks a field on its own Experiment),
// but the two runs are independent and execute via the same parallel
// harness: --jobs 2 runs them concurrently with identical output. With
// --metrics-out/--trace-out set, each run exports under a ".runNNN"
// suffix (run000 = no-coalloc, run001 = dyn-coalloc).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/PhaseDetector.h"
#include "support/Statistics.h"

#include <string_view>

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

struct TimelineRun {
  std::vector<PeriodPoint> Timeline;
  RunResult Result;
};

TimelineRun runTimeline(uint32_t Scale, bool Coalloc, size_t RunIndex) {
  RunConfig C;
  C.Workload = "db";
  C.Params.ScalePercent = Scale;
  C.Params.Seed = envSeed();
  C.HeapFactor = 4.0;
  C.Monitoring = true;
  C.Coallocation = Coalloc;
  C.Monitor.SamplingInterval = 5000; // Dense timeline, time-scaled.
  C.Obs = uniquifySuiteObsPaths(resolveObsConfig(C.Obs), RunIndex);
  Experiment E(C);
  // Track the headline field: dbRecord::value.
  FieldId F = kInvalidId;
  for (size_t I = 0; I != E.vm().classes().numFields(); ++I)
    if (std::string_view(
            E.vm().classes().field(static_cast<FieldId>(I)).Name) ==
        "dbRecord::value")
      F = static_cast<FieldId>(I);
  E.monitor()->missTable().trackField(F);
  E.run();
  return {E.monitor()->missTable().timeline(F), E.result()};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(100);
  banner("Figure 7: sampled misses for db Record::value over time",
         "Figure 7(a) cumulative count, 7(b) per-period rate + 3-period "
         "moving average",
         Scale,
         "the dyn-coalloc cumulative curve bends flat once co-allocation "
         "kicks in; the rate curve drops and stays lower");

  TimelineRun Runs[2];
  parallelFor(2, Opts.Jobs, [&](size_t I) {
    Runs[I] = runTimeline(Scale, /*Coalloc=*/I == 1, I);
  });
  const std::vector<PeriodPoint> &Plain = Runs[0].Timeline;
  const std::vector<PeriodPoint> &Dyn = Runs[1].Timeline;

  TableWriter T({"period", "t (ms)", "cum no-coalloc", "cum dyn-coalloc",
                 "rate no-coalloc", "rate dyn-coalloc", "avg3 dyn",
                 "phase"});
  MovingAverage Avg3(3);
  PhaseDetector Phases; // Section 5.3's phase-change detection, applied
                        // to the dyn-coalloc rate stream.
  size_t N = std::max(Plain.size(), Dyn.size());
  for (size_t I = 0; I < N; ++I) {
    const PeriodPoint *P = I < Plain.size() ? &Plain[I] : nullptr;
    const PeriodPoint *D = I < Dyn.size() ? &Dyn[I] : nullptr;
    double DynAvg = D ? Avg3.add(static_cast<double>(D->Delta)) : 0.0;
    bool NewPhase = D && Phases.observe(static_cast<double>(D->Delta));
    T.addRow({withThousandsSep(I),
              formatString("%.1f",
                           (D   ? VirtualClock::toSeconds(D->At)
                            : P ? VirtualClock::toSeconds(P->At)
                                : 0.0) *
                               1e3),
              P ? withThousandsSep(P->Cumulative) : "-",
              D ? withThousandsSep(D->Cumulative) : "-",
              P ? withThousandsSep(P->Delta) : "-",
              D ? withThousandsSep(D->Delta) : "-",
              D ? formatString("%.1f", DynAvg) : "-",
              !D         ? "-"
              : NewPhase ? formatString("-> %zu", Phases.currentPhase())
                         : formatString("%zu", Phases.currentPhase())});
  }
  emit(T, "fig7");

  uint64_t PlainTotal = Plain.empty() ? 0 : Plain.back().Cumulative;
  uint64_t DynTotal = Dyn.empty() ? 0 : Dyn.back().Cumulative;
  if (PlainTotal)
    printf("Total sampled Record::value misses: %llu -> %llu (%s; the "
           "paper reports ~60%% fewer misses on those objects)\n",
           static_cast<unsigned long long>(PlainTotal),
           static_cast<unsigned long long>(DynTotal),
           pct(static_cast<double>(DynTotal) / PlainTotal).c_str());
  maybeWriteJson(Opts, "fig7",
                 {{"db/no-coalloc", Runs[0].Result},
                  {"db/dyn-coalloc", Runs[1].Result}});
  return 0;
}
