//===-- bench/table2_space_overhead.cpp - Paper Table 2 -------------------===//
//
// Table 2: "Space overhead: Size of machine code maps in KB." For each
// program, the machine code produced by the opt compiler for its
// compilation plan, the GC maps alone, and the extended per-instruction
// machine-code maps. Key claim to reproduce: MC maps are ~4-5x the GC
// maps, yet small in absolute terms. A boot-image row aggregates the
// baseline code of all methods (the VM-internal share in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "vm/OptCompiler.h"

using namespace hpmvm;
using namespace hpmvm::bench;

namespace {

struct MapTotals {
  uint64_t Code = 0;
  uint64_t GcMaps = 0;
  uint64_t McMaps = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = bench::init(Argc, Argv);
  uint32_t Scale = envScale(40);
  banner("Table 2: space overhead of machine-code maps",
         "Table 2 (machine code KB / GC maps KB / MC maps KB per program)",
         Scale,
         "MC maps 4-5x the GC maps; absolute sizes small relative to heap");

  // Build + compile only: Table 2 is a static property of each plan, so
  // the per-program VMs are independent and run in parallel; results are
  // collected by workload index for job-count-independent output.
  std::vector<std::string> Workloads = selectedWorkloads(Opts.Filter);
  std::vector<MapTotals> Totals(Workloads.size());
  parallelFor(Workloads.size(), Opts.Jobs, [&](size_t I) {
    RunConfig C;
    C.Workload = Workloads[I];
    C.Params.ScalePercent = Scale;
    C.Params.Seed = envSeed();
    Experiment E(C);
    MapTotals &M = Totals[I];
    for (size_t F = 0; F != E.vm().numCompiledFunctions(); ++F) {
      CompiledMethodMaps Maps =
          computeMaps(E.vm().compiledCode(static_cast<uint32_t>(F)));
      M.Code += Maps.MachineCodeBytes;
      M.GcMaps += Maps.GcMapBytes;
      M.McMaps += Maps.McMapBytes;
    }
  });

  TableWriter T({"program", "machine code KB", "GC maps KB", "MC maps KB",
                 "MC/GC ratio"});
  double RatioSum = 0;
  int RatioCount = 0;
  for (size_t I = 0; I != Workloads.size(); ++I) {
    const MapTotals &M = Totals[I];
    double Ratio =
        M.GcMaps ? static_cast<double>(M.McMaps) / M.GcMaps : 0.0;
    if (M.GcMaps) {
      RatioSum += Ratio;
      ++RatioCount;
    }
    T.addRow({Workloads[I], formatString("%.1f", M.Code / 1024.0),
              formatString("%.1f", M.GcMaps / 1024.0),
              formatString("%.1f", M.McMaps / 1024.0),
              M.GcMaps ? formatString("%.1fx", Ratio) : std::string("-")});
  }

  // Boot-image analogue: the baseline code of every registered method in
  // one representative VM (db) plus its library classes.
  {
    RunConfig C;
    C.Workload = "db";
    C.Params.ScalePercent = Scale;
    Experiment E(C);
    uint64_t BaselineCode = E.vm().immortal().bytesAllocated();
    T.addRow({"boot image (baseline code)",
              formatString("%.1f", BaselineCode / 1024.0), "-", "-", "-"});
  }

  emit(T, "table2");
  if (RatioCount)
    printf("Average MC/GC map ratio: %.1fx (paper: 4-5x)\n",
           RatioSum / RatioCount);
  maybeWriteJson(Opts, "table2", std::vector<LabeledResult>{});
  return 0;
}
